// Deterministic fuzz tests: every parser that consumes bytes from the radio
// must survive arbitrary corruption — truncation, bit flips, random garbage
// — by returning an error, never by crashing or accepting silently-wrong
// data.  Seeds are fixed, so failures reproduce.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.h"
#include "core/demand.h"
#include "core/exchange.h"
#include "feat/codec.h"
#include "net/auth.h"
#include "net/serialize.h"
#include "net/transport.h"
#include "pointcloud/codec.h"
#include "pointcloud/io.h"
#include "replay/replayer.h"
#include "replay/trace.h"

namespace cooper {
namespace {

std::vector<std::uint8_t> Mutate(std::vector<std::uint8_t> bytes, Rng& rng) {
  if (bytes.empty()) return bytes;
  const int op = static_cast<int>(rng.UniformInt(4));
  switch (op) {
    case 0: {  // flip random bits
      const int flips = 1 + static_cast<int>(rng.UniformInt(8));
      for (int i = 0; i < flips; ++i) {
        bytes[rng.UniformInt(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.UniformInt(8));
      }
      break;
    }
    case 1:  // truncate
      bytes.resize(rng.UniformInt(bytes.size()));
      break;
    case 2: {  // duplicate a chunk at the end
      const std::size_t n = rng.UniformInt(bytes.size()) + 1;
      bytes.insert(bytes.end(), bytes.begin(),
                   bytes.begin() + static_cast<std::ptrdiff_t>(n));
      break;
    }
    default: {  // overwrite a run with a random byte
      const std::size_t start = rng.UniformInt(bytes.size());
      const std::size_t len = std::min(bytes.size() - start,
                                       rng.UniformInt(64) + 1);
      const std::uint8_t v = static_cast<std::uint8_t>(rng.NextU64());
      for (std::size_t i = 0; i < len; ++i) bytes[start + i] = v;
      break;
    }
  }
  return bytes;
}

core::ExchangePackage MakePackage() {
  pc::PointCloud cloud;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    cloud.Add({rng.Uniform(-30, 30), rng.Uniform(-30, 30), rng.Uniform(-2, 2)},
              static_cast<float>(rng.Uniform()));
  }
  return core::BuildPackage(3, 7.5, core::RoiCategory::kFrontSector,
                            core::NavMetadata{{1, 2, 0}, {0.2, 0, 0}, {0, 0, 1.7}},
                            cloud, pc::CloudCodec());
}

TEST(FuzzTest, PackageDeserializerNeverCrashes) {
  const auto wire = net::SerializePackage(MakePackage());
  Rng rng(42);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto mutated = Mutate(wire, rng);
    const auto result = net::DeserializePackage(mutated);
    if (result.ok()) {
      ++accepted;
      // Anything the CRC accepts must byte-equal the original message
      // (the mutation landed outside the meaningful prefix, or round-trips).
      EXPECT_EQ(net::SerializePackage(*result).size(), wire.size());
    }
  }
  // The CRC should catch essentially every mutation of the checked prefix.
  EXPECT_LT(accepted, 40);
}

TEST(FuzzTest, CodecDecoderNeverCrashes) {
  pc::PointCloud cloud;
  Rng data_rng(2);
  for (int i = 0; i < 500; ++i) {
    cloud.Add({data_rng.Uniform(-50, 50), data_rng.Uniform(-50, 50),
               data_rng.Uniform(-3, 3)},
              0.5f);
  }
  const auto bytes = pc::CloudCodec().Encode(cloud);
  Rng rng(43);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto mutated = Mutate(bytes, rng);
    const auto result = pc::CloudCodec::Decode(mutated);
    if (result.ok()) {
      // Header intact but payload corrupt can still decode (the varint
      // stream is self-terminating); the cloud must at least be bounded by
      // the declared point count.
      EXPECT_LE(result->size(), 4096u);
    }
  }
  SUCCEED();
}

// Byte-level writers mirroring the codec wire format (little endian).
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void PutF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

// Header for a one-point, non-delta stream at the given resolution.
std::vector<std::uint8_t> CodecHeader(double resolution) {
  std::vector<std::uint8_t> bytes;
  PutU32(bytes, 0x43504331);  // "CPC1"
  PutU32(bytes, 1);           // point count
  bytes.push_back(0);         // flags: no delta
  PutF64(bytes, resolution);
  PutF64(bytes, 0.0);  // origin x, y, z
  PutF64(bytes, 0.0);
  PutF64(bytes, 0.0);
  return bytes;
}

TEST(FuzzTest, VarintOverflowBitsRejected) {
  // Regression: a ten-byte varint whose last byte carries payload above bit
  // 63 used to be truncated silently (the bits were shifted out).  The
  // decoder must reject it as corrupt instead of accepting a wrapped value.
  auto stream_with_final_byte = [](std::uint8_t last) {
    auto bytes = CodecHeader(0.01);
    for (int i = 0; i < 9; ++i) bytes.push_back(0x80);  // 63 bits of zero
    bytes.push_back(last);                              // tenth byte
    // y, z varints and reflectance so a *valid* x still decodes fully.
    bytes.push_back(0x00);
    bytes.push_back(0x00);
    bytes.push_back(0x00);
    return bytes;
  };
  // Any payload bit beyond bit 63 is an error...
  for (const std::uint8_t bad : {0x02, 0x40, 0x7e, 0x03}) {
    EXPECT_FALSE(pc::CloudCodec::Decode(stream_with_final_byte(bad)).ok())
        << "accepted overflow byte " << static_cast<int>(bad);
  }
  // ...while the maximal legal tenth byte (bit 63 only) still decodes.
  const auto max_legal = pc::CloudCodec::Decode(stream_with_final_byte(0x01));
  ASSERT_TRUE(max_legal.ok());
  EXPECT_EQ(max_legal->size(), 1u);
  EXPECT_TRUE(std::isfinite((*max_legal)[0].position.x));
}

TEST(FuzzTest, ExtremeQuantizedCoordinatesRoundTrip) {
  // Coordinates whose quantised values need the full ten-byte varint range
  // (|q| up to ~7e18) must survive encode -> decode without truncation.
  for (const bool delta : {false, true}) {
    pc::CodecConfig cfg;
    cfg.resolution = 0.25;
    cfg.delta_encode = delta;
    pc::PointCloud cloud;
    const double e = 9.0e17;
    for (const double x : {-e, 0.0, e}) {
      for (const double y : {-e, e}) {
        cloud.Add({x, y, 0.0}, 0.5f);
      }
    }
    const auto bytes = pc::CloudCodec(cfg).Encode(cloud);
    const auto decoded = pc::CloudCodec::Decode(bytes);
    ASSERT_TRUE(decoded.ok()) << "delta " << delta;
    ASSERT_EQ(decoded->size(), cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      // Quantisation error is resolution/2; at 9e17 the double arithmetic
      // adds a few hundred ulp (each 128 here) — truncation would be ~1e18.
      EXPECT_NEAR((*decoded)[i].position.x, cloud[i].position.x, 2048.0);
      EXPECT_NEAR((*decoded)[i].position.y, cloud[i].position.y, 2048.0);
      EXPECT_NEAR((*decoded)[i].position.z, cloud[i].position.z, 2048.0);
    }
  }
}

TEST(FuzzTest, KittiBytesParserNeverCrashes) {
  Rng rng(44);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(rng.UniformInt(4096));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.NextU64());
    const auto result = pc::FromKittiBytes(garbage);
    if (result.ok()) {
      EXPECT_EQ(garbage.size() % 16, 0u);
    }
  }
}

TEST(FuzzTest, FragmentParserNeverCrashes) {
  Rng rng(45);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.UniformInt(2048));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.NextU64());
    const auto result = core::DeserializeFragment(garbage);
    if (result.ok()) {
      EXPECT_EQ(static_cast<std::size_t>(result->width) *
                    static_cast<std::size_t>(result->height),
                result->pixels.size());
    }
  }
}

TEST(FuzzTest, FrameReassemblerNeverCrashes) {
  // Mutated real frames and pure garbage into the reassembler: it must stay
  // within its pending-package bound, account for every offered frame in its
  // stats, and only ever complete packages within the declared size cap.
  const auto wire = net::SerializePackage(MakePackage());
  const auto frames = net::FragmentPackage(wire, /*sender=*/1, /*seq=*/1, 256);
  ASSERT_TRUE(frames.ok());
  ASSERT_GE(frames->size(), 4u);

  net::Reassembler reassembler;
  Rng rng(47);
  double now_ms = 0.0;
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    now_ms += 0.25;
    std::vector<std::uint8_t> bytes;
    if (rng.Bernoulli(0.7)) {
      bytes = Mutate((*frames)[rng.UniformInt(frames->size())], rng);
    } else {
      bytes.resize(rng.UniformInt(512));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextU64());
    }
    const auto event = reassembler.Offer(bytes, now_ms);
    if (event.kind == net::Reassembler::Event::Kind::kPackageComplete) {
      EXPECT_LE(event.package.size(), net::kMaxPackageBytes);
    }
    EXPECT_LE(reassembler.pending_packages(), net::Reassembler::kMaxPending);
  }
  const auto& st = reassembler.stats();
  EXPECT_EQ(st.frames_accepted + st.frames_duplicate + st.frames_corrupt +
                st.frames_inconsistent,
            static_cast<std::size_t>(kTrials));
}

TEST(FuzzTest, TruncatedFramePrefixesAllRejected) {
  // Every strict prefix of a valid frame must be rejected as corrupt — the
  // trailing CRC covers the whole frame, so no truncation can sneak through.
  const auto wire = net::SerializePackage(MakePackage());
  const auto frames = net::FragmentPackage(wire, 1, 1, 512);
  ASSERT_TRUE(frames.ok());
  const auto& frame = frames->front();
  net::Reassembler reassembler;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(frame.begin(),
                                           frame.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    const auto event = reassembler.Offer(prefix, 0.0);
    EXPECT_EQ(event.kind, net::Reassembler::Event::Kind::kCorruptFrame)
        << "prefix of " << cut << " bytes accepted";
  }
  EXPECT_EQ(reassembler.stats().frames_corrupt, frame.size());
  EXPECT_EQ(reassembler.pending_packages(), 0u);
}

TEST(FuzzTest, DecodePackageMutatedPayloadNeverCrashes) {
  // A package can pass the outer wire CRC yet carry a corrupt codec payload
  // (e.g. corruption before sealing, or a buggy sender).  DecodePackage must
  // return an error or a bounded cloud — never crash or run away.
  const auto package = MakePackage();
  Rng rng(48);
  for (int trial = 0; trial < 2000; ++trial) {
    core::ExchangePackage mutated = package;
    mutated.payload = Mutate(mutated.payload, rng);
    const auto result = core::DecodePackage(mutated);
    if (result.ok()) {
      // The codec header declares the point count; anything accepted must
      // stay within it (the source cloud has 300 points).
      EXPECT_LE(result->size(), 4096u);
    }
  }
  SUCCEED();
}

// A small but complete replay trace: config, scan, wire frame, one detect
// step with its digest, end record.
std::vector<std::uint8_t> MakeTraceImage() {
  replay::TraceConfig config;
  config.name = "fuzz";
  config.lidar.beams = 16;
  config.lidar.azimuth_steps = 64;
  replay::TraceWriter writer;
  writer.AppendConfig(config);
  pc::PointCloud cloud;
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    cloud.Add({rng.Uniform(-10, 10), rng.Uniform(-10, 10), rng.Uniform(0, 2)},
              0.25f);
  }
  writer.AppendScan(0, cloud);
  writer.AppendWireFrame(9.99, {1, 2, 3, 4, 5});
  writer.AppendDetect(replay::DetectRecord{10.0, 0, {}});
  replay::StepDigest digest;
  digest.timestamp_s = 10.0;
  writer.AppendStepDigest(digest);
  writer.AppendEnd(replay::EndRecord{1, 0x1234});
  return writer.bytes();
}

TEST(FuzzTest, TraceDecoderNeverCrashesOnMutations) {
  // Bit flips, truncations, duplicated chunks and overwritten runs over a
  // valid trace: the decoder must error cleanly or produce a structurally
  // valid trace — never crash, hang or read out of bounds (asan-checked).
  const auto image = MakeTraceImage();
  Rng rng(49);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto mutated = Mutate(image, rng);
    const auto trace = replay::ParseTrace(mutated);
    if (!trace.ok()) {
      // Every rejection is a recoverable status, not an abort.
      EXPECT_NE(trace.status().code(), StatusCode::kOk);
      continue;
    }
    ++accepted;
    // Anything accepted passed per-record CRCs and the structural rules.
    EXPECT_EQ(trace->end.step_count, 1u);
    EXPECT_EQ(trace->scans.size(), 1u);
  }
  // The per-record CRC should catch essentially every byte-level mutation;
  // only mutations past the end record (duplicated-chunk op) can survive,
  // and those fail the records-after-end rule.
  EXPECT_LT(accepted, 40);
}

TEST(FuzzTest, TraceDecoderNeverCrashesOnGarbage) {
  Rng rng(50);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.UniformInt(1024));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.NextU64());
    EXPECT_FALSE(replay::ParseTrace(garbage).ok());
  }
}

TEST(FuzzTest, TraceTruncationsAllRejected) {
  // Every strict prefix of a valid trace must fail cleanly: either inside
  // the header, inside a record frame, or — past the last full record — by
  // the missing-end-record rule.
  const auto image = MakeTraceImage();
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto trace = replay::ParseTrace(prefix);
    EXPECT_FALSE(trace.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_EQ(trace.status().code(), StatusCode::kDataLoss);
  }
}

TEST(FuzzTest, TraceVersionSkewRejected) {
  auto image = MakeTraceImage();
  for (const std::uint16_t version : {0, 2, 3, 255, 65535}) {
    image[4] = static_cast<std::uint8_t>(version);
    image[5] = static_cast<std::uint8_t>(version >> 8);
    const auto trace = replay::ParseTrace(image);
    ASSERT_FALSE(trace.ok()) << "version " << version << " accepted";
    EXPECT_EQ(trace.status().code(), StatusCode::kDataLoss);
  }
}

TEST(FuzzTest, TraceUnknownTagsAndLyingLengthsRejected) {
  const auto image = MakeTraceImage();
  const std::size_t record0 = replay::kTraceHeaderBytes;
  {  // unknown tag (11 = one past kServeEvent, 0, 0xff)
    for (const std::uint8_t tag : {0, 11, 255}) {
      auto bad = image;
      bad[record0] = tag;
      const auto trace = replay::ParseTrace(bad);
      ASSERT_FALSE(trace.ok()) << "tag " << static_cast<int>(tag);
      EXPECT_EQ(trace.status().code(), StatusCode::kDataLoss);
    }
  }
  {  // length inflated beyond the hard record cap
    auto bad = image;
    bad[record0 + 1] = 0xff;
    bad[record0 + 2] = 0xff;
    bad[record0 + 3] = 0xff;
    bad[record0 + 4] = 0xff;
    EXPECT_EQ(replay::ParseTrace(bad).status().code(), StatusCode::kDataLoss);
  }
  {  // CRC field itself corrupted: record otherwise intact
    replay::TraceReader probe(image);
    ASSERT_TRUE(probe.ReadHeader().ok());
    auto first = probe.Next();
    ASSERT_TRUE(first.ok());
    const std::size_t crc_at = record0 + replay::kRecordOverheadBytes - 4 +
                               first->payload.size();
    auto bad = image;
    bad[crc_at] ^= 0x10;
    EXPECT_EQ(replay::ParseTrace(bad).status().code(), StatusCode::kDataLoss);
  }
}

// --- Serve-event records (kServeEvent) ---

replay::ServeEventRecord MakeServeEvent() {
  replay::ServeEventRecord e;
  e.kind = replay::ServeEventKind::kJobComplete;
  e.time_us = 123456789;
  e.vehicle = 42;
  e.shard = 3;
  e.level = 1;
  e.queue_depth = 17;
  e.arg0 = 0xdeadbeefcafef00dull;
  e.arg1 = 7;
  return e;
}

std::vector<std::uint8_t> ServeEventPayload(
    const replay::ServeEventRecord& e) {
  replay::TraceWriter writer;
  writer.AppendServeEvent(e);
  replay::TraceReader reader(writer.bytes());
  EXPECT_TRUE(reader.ReadHeader().ok());
  auto record = reader.Next();
  EXPECT_TRUE(record.ok());
  return record->payload;
}

TEST(FuzzTest, ServeEventRoundTripsThroughRecordFraming) {
  const auto payload = ServeEventPayload(MakeServeEvent());
  ASSERT_EQ(payload.size(), replay::kServeEventBytes);
  const auto back = replay::DecodeServeEvent(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, replay::ServeEventKind::kJobComplete);
  EXPECT_EQ(back->time_us, 123456789u);
  EXPECT_EQ(back->vehicle, 42u);
  EXPECT_EQ(back->shard, 3u);
  EXPECT_EQ(back->level, 1);
  EXPECT_EQ(back->queue_depth, 17u);
  EXPECT_EQ(back->arg0, 0xdeadbeefcafef00dull);
  EXPECT_EQ(back->arg1, 7u);
}

TEST(FuzzTest, ServeEventDecoderNeverCrashesOnMutations) {
  const auto payload = ServeEventPayload(MakeServeEvent());
  Rng rng(51);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto mutated = Mutate(payload, rng);
    const auto decoded = replay::DecodeServeEvent(mutated);
    if (!decoded.ok()) {
      // Every rejection must be the clean DATA_LOSS contract.
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
      continue;
    }
    // Anything accepted kept the fixed size and the field ranges.
    const auto kind = static_cast<std::uint8_t>(decoded->kind);
    EXPECT_GE(kind, 1);
    EXPECT_LE(kind, 8);
    EXPECT_LE(decoded->level, 3);
  }
}

TEST(FuzzTest, ServeEventTruncationsAllRejected) {
  // The payload is fixed-size: every strict prefix (and every extension) is
  // a lying length and must fail cleanly.
  const auto payload = ServeEventPayload(MakeServeEvent());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(
        payload.begin(), payload.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto decoded = replay::DecodeServeEvent(prefix);
    ASSERT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
  auto extended = payload;
  extended.push_back(0);
  EXPECT_EQ(replay::DecodeServeEvent(extended).status().code(),
            StatusCode::kDataLoss);
}

TEST(FuzzTest, ServeEventFieldRangesEnforced) {
  {  // kind outside [kSetup, kSummary]
    for (const std::uint8_t kind : {0, 9, 200, 255}) {
      auto payload = ServeEventPayload(MakeServeEvent());
      payload[0] = kind;
      const auto decoded = replay::DecodeServeEvent(payload);
      ASSERT_FALSE(decoded.ok()) << "kind " << static_cast<int>(kind);
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
  {  // level beyond the ladder + n/a sentinel
    for (const std::uint8_t level : {4, 17, 255}) {
      auto payload = ServeEventPayload(MakeServeEvent());
      payload[17] = level;  // u8 kind | u64 time | u32 vehicle | u32 shard
      const auto decoded = replay::DecodeServeEvent(payload);
      ASSERT_FALSE(decoded.ok()) << "level " << static_cast<int>(level);
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(FuzzTest, ServeEventRecordCrcCorruptionRejected) {
  // Flip every single byte of the framed record in turn: the reader must
  // reject each corruption (tag, length, payload or CRC) as DATA_LOSS.
  replay::TraceWriter writer;
  writer.AppendServeEvent(MakeServeEvent());
  const auto image = writer.bytes();
  for (std::size_t at = replay::kTraceHeaderBytes; at < image.size(); ++at) {
    auto bad = image;
    bad[at] ^= 0x01;
    replay::TraceReader reader(bad);
    ASSERT_TRUE(reader.ReadHeader().ok());
    const auto record = reader.Next();
    ASSERT_FALSE(record.ok()) << "corrupt byte " << at << " accepted";
    EXPECT_EQ(record.status().code(), StatusCode::kDataLoss);
  }
}

// A mid-sized feature map with exact zeros (mask path), repeated values and
// multiple channels — enough structure that every decoder branch is live.
feat::FeatureMap MakeFeatureMap() {
  feat::FeatureMap map;
  map.tensor.spatial_shape = {64, 64, 16};
  map.origin = {0.0, -16.0, -2.0};
  map.voxel_size = {0.5, 0.5, 0.5};
  Rng rng(5);
  constexpr std::size_t kSites = 60;
  constexpr std::size_t kChannels = 4;
  map.tensor.features = nn::Tensor({kSites, kChannels});
  for (std::size_t i = 0; i < kSites; ++i) {
    map.tensor.coords.push_back(
        pc::VoxelCoord{static_cast<std::int32_t>(rng.UniformInt(64)),
                       static_cast<std::int32_t>(rng.UniformInt(64)),
                       static_cast<std::int32_t>(rng.UniformInt(16))});
    for (std::size_t c = 0; c < kChannels; ++c) {
      map.tensor.features.At(i, c) =
          rng.Uniform() < 0.3 ? 0.0f : static_cast<float>(rng.Uniform(0.01, 4.0));
    }
  }
  return map;
}

// CFM1 byte offsets (little endian): magic 0-3, flags 4, num_active 5-8,
// channels 9-10, shape 11-22, origin/voxel f64s 23-70, then per-channel
// (zero_point f32, scale f32) pairs from 71.
constexpr std::size_t kFeatNumActiveAt = 5;
constexpr std::size_t kFeatZeroPoint0At = 71;
constexpr std::size_t kFeatScale0At = 75;

void OverwriteF32(std::vector<std::uint8_t>& bytes, std::size_t at, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  for (int i = 0; i < 4; ++i) {
    bytes[at + i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

TEST(FuzzTest, FeatureDecoderNeverCrashes) {
  for (const int bits : {8, 16}) {
    const auto bytes =
        feat::FeatureCodec(feat::FeatureCodecConfig{bits}).Encode(MakeFeatureMap());
    Rng rng(44 + bits);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto mutated = Mutate(bytes, rng);
      const auto result = feat::FeatureCodec::Decode(mutated);
      if (result.ok()) {
        // Whatever survives the structural checks must still be bounded by
        // the stream that carried it: no allocation amplification.
        EXPECT_LE(result->num_active(), mutated.size());
        EXPECT_GE(result->channels(), 1u);
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
      }
    }
  }
}

TEST(FuzzTest, FeatureTruncationPrefixesAllRejected) {
  const auto bytes = feat::FeatureCodec().Encode(MakeFeatureMap());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto result = feat::FeatureCodec::Decode(prefix);
    ASSERT_FALSE(result.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
}

TEST(FuzzTest, FeatureLyingSiteCountRejected) {
  const auto bytes = feat::FeatureCodec().Encode(MakeFeatureMap());
  // Claim far more sites than the payload can hold: the decoder must reject
  // before reserving storage for them.
  for (const std::uint32_t lie :
       {std::uint32_t{100000}, std::uint32_t{0xffffffff}}) {
    auto bad = bytes;
    for (int i = 0; i < 4; ++i) {
      bad[kFeatNumActiveAt + i] = static_cast<std::uint8_t>(lie >> (8 * i));
    }
    const auto result = feat::FeatureCodec::Decode(bad);
    ASSERT_FALSE(result.ok()) << "count " << lie;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
}

TEST(FuzzTest, FeatureQuantHeaderCorruptionRejected) {
  const auto bytes = feat::FeatureCodec().Encode(MakeFeatureMap());
  const float bad_values[] = {std::nanf(""), -1.0f,
                              std::numeric_limits<float>::infinity()};
  for (const float v : bad_values) {
    {  // channel-0 scale
      auto bad = bytes;
      OverwriteF32(bad, kFeatScale0At, v);
      EXPECT_EQ(feat::FeatureCodec::Decode(bad).status().code(),
                StatusCode::kDataLoss);
    }
    if (v >= 0.0f || std::isnan(v)) {  // zero_point may be negative
      auto bad = bytes;
      OverwriteF32(bad, kFeatZeroPoint0At, v);
      EXPECT_EQ(feat::FeatureCodec::Decode(bad).status().code(),
                StatusCode::kDataLoss);
    }
  }
}

TEST(FuzzTest, TamperedSealedMessagesAlwaysRejected) {
  net::PackageAuthenticator auth;
  net::MacKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  auth.RegisterSender(1, key);

  const auto wire = net::SerializePackage(MakePackage());
  Rng rng(46);
  for (int trial = 0; trial < 500; ++trial) {
    auto sealed = net::Seal(key, wire);
    // Tamper with the payload but keep the original MAC.
    auto tampered = Mutate(sealed.wire_bytes, rng);
    if (tampered == sealed.wire_bytes) continue;
    sealed.wire_bytes = std::move(tampered);
    const auto s = auth.Verify(1, 1000.0 + trial, sealed);
    EXPECT_FALSE(s.ok()) << "tampered message accepted at trial " << trial;
  }
}

}  // namespace
}  // namespace cooper
