#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/lidar.h"
#include "sim/scene.h"
#include "spod/detector.h"

namespace cooper::spod {
namespace {

// --- Templates ---

TEST(TemplatesTest, ThreeStandardClasses) {
  const auto& templates = StandardTemplates();
  ASSERT_EQ(templates.size(), 3u);
  EXPECT_EQ(templates[0].cls, ObjectClass::kCar);  // cars first (class prior)
}

TEST(TemplatesTest, LookupByClass) {
  EXPECT_EQ(TemplateFor(ObjectClass::kPedestrian).cls, ObjectClass::kPedestrian);
  EXPECT_LT(TemplateFor(ObjectClass::kPedestrian).max_fit_length,
            TemplateFor(ObjectClass::kCar).max_fit_length);
  EXPECT_GT(TemplateFor(ObjectClass::kPedestrian).silhouette_height,
            TemplateFor(ObjectClass::kCar).silhouette_height);
}

TEST(TemplatesTest, ClassNames) {
  EXPECT_STREQ(ObjectClassName(ObjectClass::kCar), "car");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kPedestrian), "pedestrian");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kCyclist), "cyclist");
}

// --- End-to-end classification ---

pc::PointCloud ScanScene(const sim::Scene& scene, std::uint64_t seed = 5) {
  sim::LidarConfig cfg = sim::Hdl64Config();
  cfg.azimuth_steps = 1024;
  Rng rng(seed);
  return sim::LidarSimulator(cfg).Scan(scene, geom::Pose::Identity(), rng);
}

SpodDetector Detector() {
  SpodConfig cfg = MakeDenseSpodConfig();
  cfg.min_cluster_points = 4;
  return SpodDetector(cfg, MakeSensorResolution(64, 2.0, -24.8, 1024));
}

const Detection* FindNear(const std::vector<Detection>& dets, double x, double y,
                          double tol = 1.5) {
  for (const auto& d : dets) {
    if (std::abs(d.box.center.x - x) < tol && std::abs(d.box.center.y - y) < tol) {
      return &d;
    }
  }
  return nullptr;
}

TEST(MulticlassTest, PedestrianDetectedAndClassified) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kPedestrian, sim::MakePedestrianBox({8, 2, 0}),
                  0.5);
  const auto result = Detector().Detect(ScanScene(scene));
  const Detection* d = FindNear(result.detections, 8, 2);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->cls, ObjectClass::kPedestrian);
  EXPECT_GT(d->score, 0.5);
  EXPECT_LT(d->box.length, 1.0);
}

TEST(MulticlassTest, CarStillClassifiedAsCar) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, -3, 0}, 30.0), 0.6);
  const auto result = Detector().Detect(ScanScene(scene));
  const Detection* d = FindNear(result.detections, 12, -3, 2.0);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->cls, ObjectClass::kCar);
  EXPECT_GT(d->score, 0.5);
}

TEST(MulticlassTest, MixedSceneSeparatesClasses) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({14, 4, 0}, 0.0), 0.6);
  scene.AddObject(sim::ObjectClass::kPedestrian,
                  sim::MakePedestrianBox({10, -4, 0}), 0.5);
  const auto result = Detector().Detect(ScanScene(scene));
  const Detection* car = FindNear(result.detections, 14, 4, 2.0);
  const Detection* ped = FindNear(result.detections, 10, -4);
  ASSERT_NE(car, nullptr);
  ASSERT_NE(ped, nullptr);
  EXPECT_EQ(car->cls, ObjectClass::kCar);
  EXPECT_EQ(ped->cls, ObjectClass::kPedestrian);
}

TEST(MulticlassTest, PedestrianBoxNotInflatedToCar) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kPedestrian, sim::MakePedestrianBox({7, 0, 0}),
                  0.5);
  const auto result = Detector().Detect(ScanScene(scene));
  const Detection* d = FindNear(result.detections, 7, 0);
  ASSERT_NE(d, nullptr);
  EXPECT_LT(d->box.BevArea(), 1.0);  // not a 3.6 x 1.55 completed car box
  EXPECT_GT(d->box.height, 1.4);     // but person-tall
}

TEST(MulticlassTest, SmallObjectsHarderAtRange) {
  // The paper's §III-A point: pedestrian detection degrades with distance
  // much faster than car detection.
  sim::Scene near_scene, far_scene;
  near_scene.AddObject(sim::ObjectClass::kPedestrian,
                       sim::MakePedestrianBox({10, 0, 0}), 0.5);
  far_scene.AddObject(sim::ObjectClass::kPedestrian,
                      sim::MakePedestrianBox({45, 0, 0}), 0.5);
  const SpodDetector detector = Detector();
  const auto near_result = detector.Detect(ScanScene(near_scene));
  const auto far_result = detector.Detect(ScanScene(far_scene));
  const Detection* near_d = FindNear(near_result.detections, 10, 0);
  ASSERT_NE(near_d, nullptr);
  const Detection* far_d = FindNear(far_result.detections, 45, 0);
  const double far_score = far_d ? far_d->score : 0.0;
  EXPECT_GT(near_d->score, far_score + 0.15);
}

}  // namespace
}  // namespace cooper::spod
