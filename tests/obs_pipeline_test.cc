// End-to-end observability test: drives the full two-vehicle exchange
// (lidar scan -> ROI/codec packaging -> fragmentation -> session receive ->
// reassembly -> reconstruction -> SPOD on the fused cloud) with the
// `CooperConfig::observability` knob on, then schema-checks the exported
// Chrome trace (span presence, nesting, ParallelFor worker attribution) and
// verifies the counter snapshot mirrors the pre-existing stats structs and
// is bit-identical across same-seed reruns.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "eval/experiment.h"
#include "net/serialize.h"
#include "net/transport.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

namespace cooper::core {
namespace {

CooperConfig TestConfig() {
  sim::LidarConfig lidar = sim::Vlp16Config();
  lidar.azimuth_steps = 900;  // keep the scans fast
  CooperConfig config = eval::MakeCooperConfig(lidar);
  config.observability = true;
  // Explicit 2 (not 0): the global pool guarantees two participants even on
  // single-core hosts, so ParallelFor attribution is always exercised.
  config.num_threads = 2;
  return config;
}

struct FlowResult {
  SessionStats session_stats;
  std::size_t detections = 0;
  std::size_t transmitter_points = 0;
};

// One complete exchange between two T&J viewpoints, entirely over the wire
// path (fragment -> ReceiveFrame -> reassemble).
FlowResult RunTwoVehicleFlow() {
  const CooperConfig config = TestConfig();
  const sim::Scenario scenario = [] {
    sim::Scenario sc = sim::MakeTjScenario(2);
    sc.lidar.azimuth_steps = 900;
    return sc;
  }();
  const CooperPipeline pipeline(config);  // flips obs on (observability=true)
  CooperativeSession session(config);

  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(scenario.seed);
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  const pc::PointCloud local_cloud =
      lidar.Scan(scenario.scene, scenario.viewpoints[0].ToPose(), rng);
  const pc::PointCloud remote_cloud =
      lidar.Scan(scenario.scene, scenario.viewpoints[1].ToPose(), rng);
  const NavMetadata local_nav{scenario.viewpoints[0].position,
                              scenario.viewpoints[0].attitude, mount};
  const NavMetadata remote_nav{scenario.viewpoints[1].position,
                               scenario.viewpoints[1].attitude, mount};

  const ExchangePackage package = pipeline.MakePackage(
      2, /*timestamp_s=*/10.0, RoiCategory::kFullFrame, remote_nav,
      remote_cloud);
  const std::vector<std::uint8_t> wire = net::SerializePackage(package);
  const auto frames = net::FragmentPackage(wire, /*sender_id=*/2,
                                           /*package_seq=*/0,
                                           config.transport.mtu_bytes);
  EXPECT_TRUE(frames.ok());
  for (const auto& frame : *frames) {
    EXPECT_TRUE(session.ReceiveFrame(frame, /*now_s=*/10.01).ok());
  }

  const CooperOutput out =
      session.DetectCooperative(local_cloud, local_nav, /*now_s=*/10.05);
  FlowResult r;
  r.session_stats = session.stats();
  r.detections = out.fused.detections.size();
  r.transmitter_points = out.transmitter_points;
  return r;
}

const obs::json::Value* FindEvent(const obs::json::Value& events,
                                  const std::string& name) {
  for (const auto& e : events.array) {
    const auto* n = e.Find("name");
    const auto* ph = e.Find("ph");
    if (n != nullptr && ph != nullptr && ph->str == "X" && n->str == name) {
      return &e;
    }
  }
  return nullptr;
}

// `inner` lies within `outer` on the same thread lane.
void ExpectNested(const obs::json::Value* outer, const obs::json::Value* inner,
                  const std::string& what) {
  ASSERT_NE(outer, nullptr) << what;
  ASSERT_NE(inner, nullptr) << what;
  EXPECT_EQ(outer->Find("tid")->number, inner->Find("tid")->number) << what;
  EXPECT_LE(outer->Find("ts")->number, inner->Find("ts")->number) << what;
  EXPECT_GE(outer->Find("ts")->number + outer->Find("dur")->number,
            inner->Find("ts")->number + inner->Find("dur")->number)
      << what;
}

TEST(ObsPipelineTest, TwoVehicleTraceIsValidAndNested) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().ResetValues();
  obs::Tracer::Global().Clear();

  const FlowResult flow = RunTwoVehicleFlow();
  EXPECT_EQ(flow.session_stats.packages_accepted, 1u);
  EXPECT_GT(flow.transmitter_points, 0u);

  std::ostringstream out;
  obs::Tracer::Global().WriteChromeTrace(out);
  const auto doc = obs::json::Parse(out.str());
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->Find("displayTimeUnit"), nullptr);
  EXPECT_EQ(doc->Find("displayTimeUnit")->str, "ms");
  const auto* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(obs::Tracer::Global().dropped_events(), 0u);

  // Every pipeline layer shows up in the trace.
  for (const char* name :
       {"lidar.scan", "cooper.make_package", "codec.encode",
        "transport.fragment", "session.receive_frame", "session.receive_wire",
        "codec.decode", "session.detect_cooperative", "cooper.reconstruct",
        "spod.detect"}) {
    EXPECT_NE(FindEvent(*events, name), nullptr)
        << "missing span: " << name;
  }

  // Schema: complete events carry the Chrome trace-event fields.
  for (const auto& e : events->array) {
    const auto* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str != "X") continue;
    for (const char* key : {"name", "cat", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(e.Find(key), nullptr) << "X event missing " << key;
    }
    EXPECT_GE(e.Find("dur")->number, 0.0);
    EXPECT_EQ(e.Find("pid")->number, 1.0);
  }

  // Nesting across layers: encode inside packaging, reconstruction and
  // detection inside the session's fused pass, decode inside the wire
  // receive.
  ExpectNested(FindEvent(*events, "cooper.make_package"),
               FindEvent(*events, "codec.encode"), "encode in make_package");
  ExpectNested(FindEvent(*events, "session.receive_wire"),
               FindEvent(*events, "codec.decode"), "decode in receive_wire");
  ExpectNested(FindEvent(*events, "session.detect_cooperative"),
               FindEvent(*events, "cooper.reconstruct"),
               "reconstruct in detect_cooperative");
  ExpectNested(FindEvent(*events, "session.detect_cooperative"),
               FindEvent(*events, "spod.detect"),
               "spod.detect in detect_cooperative");

  // ParallelFor attribution: parallel stages re-open the submitting span on
  // participant lanes (category "parallel").  At hardware concurrency, the
  // lidar scans and detector stages all fan out.
  std::size_t parallel_events = 0;
  std::set<std::string> parallel_names;
  for (const auto& e : events->array) {
    const auto* cat = e.Find("cat");
    if (cat == nullptr || cat->str != "parallel") continue;
    ++parallel_events;
    parallel_names.insert(e.Find("name")->str);
  }
  EXPECT_GE(parallel_events, 1u);
  // The tag is the innermost span open at dispatch, so parallel events are
  // named after pipeline spans, never invented ones.
  for (const auto& name : parallel_names) {
    EXPECT_NE(FindEvent(*events, name), nullptr)
        << "parallel tag without a matching span: " << name;
  }

  // Counters mirror the stats structs the pipeline always kept.
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter("session.packages_accepted"),
            flow.session_stats.packages_accepted);
  EXPECT_EQ(counter("reassembly.packages_completed"), 1u);
  EXPECT_GE(counter("reassembly.frames_accepted"), 1u);
  EXPECT_GT(counter("lidar.points"), 0u);
  EXPECT_GT(counter("codec.bytes_encoded"), 0u);
  // The payload decodes exactly once: the ReceiveWire validation decode
  // seeds the reconstruction cache, so fusion never decodes it again.
  EXPECT_EQ(counter("codec.points_decoded"), counter("codec.points_encoded"));
  EXPECT_GT(counter("spod.input_points"), 0u);
  // Stage histograms exist for the StageTimer laps.
  bool saw_stage_histogram = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name.rfind("stage.", 0) == 0) saw_stage_histogram = true;
  }
  EXPECT_TRUE(saw_stage_histogram);

  obs::SetEnabled(false);
}

TEST(ObsPipelineTest, SameSeedRerunsYieldIdenticalCounters) {
  obs::SetEnabled(true);

  obs::MetricsRegistry::Global().ResetValues();
  const FlowResult first_flow = RunTwoVehicleFlow();
  const auto first = obs::MetricsRegistry::Global().Snapshot();

  obs::MetricsRegistry::Global().ResetValues();
  const FlowResult second_flow = RunTwoVehicleFlow();
  const auto second = obs::MetricsRegistry::Global().Snapshot();

  // Counter snapshots are bit-identical across same-seed reruns (trace
  // timestamps and stage-duration histograms are wall-clock and exempt).
  EXPECT_EQ(first.counters, second.counters);
  EXPECT_EQ(first_flow.detections, second_flow.detections);
  EXPECT_EQ(first_flow.transmitter_points, second_flow.transmitter_points);

  obs::SetEnabled(false);
}

}  // namespace
}  // namespace cooper::core
