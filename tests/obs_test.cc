// Unit tests for the cooper_obs observability layer: the metrics registry
// (counters/gauges/histograms and their JSONL export), the tracer (Chrome
// trace-event schema, span nesting, ParallelFor propagation), the JSON
// helper, and the COOPER_LOG_LEVEL plumbing.  Each gtest case runs in its
// own process (gtest_discover_tests), so enabling the sticky process-wide
// switch in one test cannot leak into another.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cooper {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().ResetValues();
    obs::Tracer::Global().Clear();
  }
  void TearDown() override { obs::SetEnabled(false); }
};

// --- Master switch ---

TEST_F(ObsTest, DisabledInstrumentsAreNoOps) {
  auto& counter = obs::MetricsRegistry::Global().GetCounter("off.counter");
  auto& gauge = obs::MetricsRegistry::Global().GetGauge("off.gauge");
  auto& histogram = obs::MetricsRegistry::Global().GetHistogram("off.histo");
  obs::SetEnabled(false);
  counter.Inc(7);
  gauge.Set(3.5);
  histogram.Record(1.0);
  COOPER_COUNT("off.macro");
  {
    obs::Span span("off.span", "test");
  }
  obs::SetEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
  EXPECT_EQ(obs::MetricsRegistry::Global().GetCounter("off.macro").Value(), 0u);
  EXPECT_EQ(obs::Tracer::Global().event_count(), 0u);
}

// --- Counters ---

TEST_F(ObsTest, CounterAccumulates) {
  auto& c = obs::MetricsRegistry::Global().GetCounter("test.counter");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "test.counter");
  // Same name returns the same object.
  EXPECT_EQ(&obs::MetricsRegistry::Global().GetCounter("test.counter"), &c);
}

TEST_F(ObsTest, CounterMacroCachesAndCounts) {
  for (int i = 0; i < 5; ++i) COOPER_COUNT("test.macro");
  COOPER_COUNT_N("test.macro", 10);
  EXPECT_EQ(obs::MetricsRegistry::Global().GetCounter("test.macro").Value(),
            15u);
}

TEST_F(ObsTest, CounterExactUnderContention) {
  auto& c = obs::MetricsRegistry::Global().GetCounter("test.contended");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, ResetValuesZeroesButKeepsRegistrations) {
  auto& c = obs::MetricsRegistry::Global().GetCounter("test.reset");
  c.Inc(9);
  obs::MetricsRegistry::Global().ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  c.Inc(2);  // cached reference still valid
  EXPECT_EQ(c.Value(), 2u);
}

// --- Gauges ---

TEST_F(ObsTest, GaugeSetAndAdd) {
  auto& g = obs::MetricsRegistry::Global().GetGauge("test.gauge");
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_EQ(g.Value(), 4.0);
  g.Set(-1.0);
  EXPECT_EQ(g.Value(), -1.0);
}

// --- Histograms ---

TEST_F(ObsTest, HistogramSummaryStatistics) {
  auto& h = obs::MetricsRegistry::Global().GetHistogram(
      "test.histo", {1.0, 2.0, 5.0, 10.0});
  for (const double v : {0.5, 1.5, 1.5, 4.0, 9.0, 100.0}) h.Record(v);
  const auto s = h.Snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 116.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  ASSERT_EQ(s.buckets.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(s.buckets[0], 1u);      // 0.5
  EXPECT_EQ(s.buckets[1], 2u);      // 1.5, 1.5
  EXPECT_EQ(s.buckets[2], 1u);      // 4.0
  EXPECT_EQ(s.buckets[3], 1u);      // 9.0
  EXPECT_EQ(s.buckets[4], 1u);      // 100.0 overflow
  // Quantiles are interpolated but must stay inside the observed range and
  // be monotone.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST_F(ObsTest, HistogramDefaultBoundsCoverMicroseconds) {
  auto& h = obs::MetricsRegistry::Global().GetHistogram("test.default_bounds");
  EXPECT_EQ(h.bounds(), obs::DefaultBounds());
  h.Record(1234.0);
  EXPECT_EQ(h.Snapshot().count, 1u);
}

// --- Snapshot / JSONL export ---

TEST_F(ObsTest, SnapshotJsonlIsValidJsonPerLine) {
  obs::MetricsRegistry::Global().GetCounter("test.jsonl.counter").Inc(3);
  obs::MetricsRegistry::Global().GetGauge("test.jsonl.gauge").Set(1.25);
  obs::MetricsRegistry::Global().GetHistogram("test.jsonl.histo").Record(42.0);
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const std::string jsonl = snapshot.ToJsonl();

  std::istringstream lines(jsonl);
  std::string line;
  bool saw_counter = false, saw_gauge = false, saw_histo = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto doc = obs::json::Parse(line);
    ASSERT_TRUE(doc.has_value()) << "unparseable JSONL line: " << line;
    ASSERT_TRUE(doc->is_object());
    const auto* type = doc->Find("type");
    const auto* name = doc->Find("name");
    ASSERT_NE(type, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(type->is_string());
    ASSERT_TRUE(name->is_string());
    if (name->str == "test.jsonl.counter") {
      saw_counter = true;
      EXPECT_EQ(type->str, "counter");
      ASSERT_NE(doc->Find("value"), nullptr);
      EXPECT_EQ(doc->Find("value")->number, 3.0);
    } else if (name->str == "test.jsonl.gauge") {
      saw_gauge = true;
      EXPECT_EQ(type->str, "gauge");
      EXPECT_EQ(doc->Find("value")->number, 1.25);
    } else if (name->str == "test.jsonl.histo") {
      saw_histo = true;
      EXPECT_EQ(type->str, "histogram");
      for (const char* key : {"count", "sum", "min", "max", "p50", "p95",
                              "p99"}) {
        ASSERT_NE(doc->Find(key), nullptr) << "missing " << key;
        EXPECT_TRUE(doc->Find(key)->is_number());
      }
      ASSERT_NE(doc->Find("bounds"), nullptr);
      ASSERT_NE(doc->Find("buckets"), nullptr);
      EXPECT_TRUE(doc->Find("bounds")->is_array());
      EXPECT_TRUE(doc->Find("buckets")->is_array());
      EXPECT_EQ(doc->Find("buckets")->array.size(),
                doc->Find("bounds")->array.size() + 1);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histo);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  obs::MetricsRegistry::Global().GetCounter("test.zz").Inc();
  obs::MetricsRegistry::Global().GetCounter("test.aa").Inc();
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
}

// --- Determinism ---

TEST_F(ObsTest, CountersIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    obs::MetricsRegistry::Global().ResetValues();
    common::ParallelFor(threads, 0, 1000, 16, [](std::size_t lo,
                                                 std::size_t hi) {
      COOPER_COUNT_N("test.determinism.items", hi - lo);
      COOPER_COUNT("test.determinism.chunks");
    });
    const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
    return snapshot.counters;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("test.determinism.items")
                .Value(),
            1000u);
}

// --- Tracer ---

TEST_F(ObsTest, SpanEmitsCompleteEvent) {
  {
    obs::Span span("test.outer", "test");
    obs::Span inner("test.inner", "test");
  }
  EXPECT_EQ(obs::Tracer::Global().event_count(), 2u);

  std::ostringstream out;
  obs::Tracer::Global().WriteChromeTrace(out);
  const auto doc = obs::json::Parse(out.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const obs::json::Value* outer = nullptr;
  const obs::json::Value* inner = nullptr;
  for (const auto& e : events->array) {
    const auto* name = e.Find("name");
    if (name == nullptr) continue;
    if (name->str == "test.outer") outer = &e;
    if (name->str == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  for (const auto* e : {outer, inner}) {
    EXPECT_EQ(e->Find("ph")->str, "X");
    EXPECT_EQ(e->Find("cat")->str, "test");
    EXPECT_TRUE(e->Find("ts")->is_number());
    EXPECT_TRUE(e->Find("dur")->is_number());
    EXPECT_TRUE(e->Find("pid")->is_number());
    EXPECT_TRUE(e->Find("tid")->is_number());
  }
  // Same thread, lexically nested: the inner interval is contained in the
  // outer one.
  EXPECT_EQ(outer->Find("tid")->number, inner->Find("tid")->number);
  EXPECT_LE(outer->Find("ts")->number, inner->Find("ts")->number);
  EXPECT_GE(outer->Find("ts")->number + outer->Find("dur")->number,
            inner->Find("ts")->number + inner->Find("dur")->number);
}

TEST_F(ObsTest, CurrentSpanNameTracksInnermost) {
  EXPECT_EQ(obs::CurrentSpanName(), "");
  obs::Span outer("a", "test");
  EXPECT_EQ(obs::CurrentSpanName(), "a");
  {
    obs::Span inner("b", "test");
    EXPECT_EQ(obs::CurrentSpanName(), "b");
  }
  EXPECT_EQ(obs::CurrentSpanName(), "a");
}

TEST_F(ObsTest, TraceHasThreadNameMetadata) {
  obs::SetCurrentThreadName("obs-test-main");
  {
    obs::Span span("test.named", "test");
  }
  std::ostringstream out;
  obs::Tracer::Global().WriteChromeTrace(out);
  const auto doc = obs::json::Parse(out.str());
  ASSERT_TRUE(doc.has_value());
  bool saw_metadata = false;
  for (const auto& e : doc->Find("traceEvents")->array) {
    const auto* ph = e.Find("ph");
    if (ph == nullptr || ph->str != "M") continue;
    ASSERT_NE(e.Find("name"), nullptr);
    EXPECT_EQ(e.Find("name")->str, "thread_name");
    const auto* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Find("name"), nullptr);
    if (args->Find("name")->str == "obs-test-main") saw_metadata = true;
  }
  EXPECT_TRUE(saw_metadata);
}

TEST_F(ObsTest, ParallelForPropagatesSpanToWorkers) {
  std::set<int> seen_ids;
  std::mutex mu;
  std::atomic<int> distinct{0};
  {
    obs::Span span("test.parallel_stage", "test");
    common::ParallelFor(4, 0, 8, 1, [&](std::size_t, std::size_t) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (seen_ids.insert(obs::CurrentThreadId()).second) {
          distinct.store(static_cast<int>(seen_ids.size()));
        }
      }
      // Rendezvous: hold the chunk until a second thread has joined in, so
      // the trace deterministically shows the stage on >= 2 lanes (bounded
      // wait keeps a 1-core host from hanging).
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
      while (distinct.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    });
  }
  auto parallel_tids = [] {
    std::ostringstream out;
    obs::Tracer::Global().WriteChromeTrace(out);
    const auto doc = obs::json::Parse(out.str());
    std::set<double> tids;
    if (!doc.has_value()) return tids;
    for (const auto& e : doc->Find("traceEvents")->array) {
      const auto* cat = e.Find("cat");
      if (cat == nullptr || cat->str != "parallel") continue;
      EXPECT_EQ(e.Find("name")->str, "test.parallel_stage");
      tids.insert(e.Find("tid")->number);
    }
    return tids;
  };
  // The caller participates inline, so its parallel event is flushed by the
  // time ParallelFor returns.
  ASSERT_GE(parallel_tids().size(), 1u);
  if (distinct.load() >= 2) {
    // A worker's span closes *after* it credits its last chunk, so its event
    // can land just after ParallelFor returns — poll briefly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (parallel_tids().size() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_GE(parallel_tids().size(), 2u);
  }
}

TEST_F(ObsTest, ParallelForWithoutSpanEmitsNoParallelEvents) {
  common::ParallelFor(4, 0, 8, 1, [](std::size_t, std::size_t) {});
  std::ostringstream out;
  obs::Tracer::Global().WriteChromeTrace(out);
  const auto doc = obs::json::Parse(out.str());
  ASSERT_TRUE(doc.has_value());
  for (const auto& e : doc->Find("traceEvents")->array) {
    const auto* cat = e.Find("cat");
    if (cat != nullptr) EXPECT_NE(cat->str, "parallel");
  }
}

// TSan hammer: spans, counters and histogram records racing from every pool
// thread while another thread snapshots concurrently.  The assertions are
// deliberately weak — the point is the data-race-free execution under
// `ctest -L obs` in the tsan preset.
TEST_F(ObsTest, ParallelForHammerIsRaceFree) {
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
      (void)obs::Tracer::Global().event_count();
      (void)snapshot;
    }
  });
  for (int round = 0; round < 10; ++round) {
    obs::Span span("test.hammer", "test");
    common::ParallelFor(0, 0, 256, 4, [](std::size_t lo, std::size_t hi) {
      COOPER_COUNT_N("test.hammer.items", hi - lo);
      obs::MetricsRegistry::Global()
          .GetHistogram("test.hammer.histo")
          .Record(static_cast<double>(hi - lo));
      obs::Span inner("test.hammer.chunk", "test");
    });
  }
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("test.hammer.items")
                .Value(),
            2560u);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetHistogram("test.hammer.histo")
                .Snapshot()
                .count,
            640u);
}

TEST_F(ObsTest, ClearDropsEvents) {
  {
    obs::Span span("test.cleared", "test");
  }
  EXPECT_GT(obs::Tracer::Global().event_count(), 0u);
  obs::Tracer::Global().Clear();
  EXPECT_EQ(obs::Tracer::Global().event_count(), 0u);
  EXPECT_EQ(obs::Tracer::Global().dropped_events(), 0u);
}

// --- JSON helper ---

TEST(JsonTest, ParsesScalarsAndContainers) {
  const auto doc = obs::json::Parse(
      R"({"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(doc->Find("b")->str, "x\ny");
  EXPECT_TRUE(doc->Find("c")->boolean);
  EXPECT_EQ(doc->Find("d")->type, obs::json::Value::Type::kNull);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(obs::json::Parse("").has_value());
  EXPECT_FALSE(obs::json::Parse("{").has_value());
  EXPECT_FALSE(obs::json::Parse("[1, 2,]").has_value());
  EXPECT_FALSE(obs::json::Parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(obs::json::Parse("nul").has_value());
}

TEST(JsonTest, EscapeRoundTripsThroughParse) {
  const std::string raw = "line1\nline2\t\"quoted\" \\slash\\";
  const auto doc = obs::json::Parse("\"" + obs::json::Escape(raw) + "\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str, raw);
}

// --- Logging ---

TEST(LoggingLevelTest, ParseLogLevelNamesAndDigits) {
  using cooper::LogLevel;
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kInfo), LogLevel::kError);
  // Unknown / null fall back.
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kDebug), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("7", LogLevel::kInfo), LogLevel::kInfo);
}

}  // namespace
}  // namespace cooper
