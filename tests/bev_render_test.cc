#include <gtest/gtest.h>

#include "eval/bev_render.h"

namespace cooper::eval {
namespace {

spod::Detection Det(double x, double y, double score,
                    spod::ObjectClass cls = spod::ObjectClass::kCar) {
  spod::Detection d;
  d.box = geom::Box3{{x, y, 0.75}, 4.5, 1.8, 1.5, 0.0};
  d.score = score;
  d.cls = cls;
  return d;
}

TEST(BevRenderTest, EmptyCanvasHasDimensionsAndLegend) {
  BevRenderConfig cfg;
  cfg.min_x = 0;
  cfg.max_x = 10;
  cfg.min_y = 0;
  cfg.max_y = 5;
  const std::string out = BevCanvas(cfg).Render();
  // 5 grid rows of 10 chars + newline each, plus the legend line.
  EXPECT_EQ(out.find("legend:"), 5u * 11u);
}

TEST(BevRenderTest, SensorMarkerAtOrigin) {
  BevCanvas canvas;
  canvas.DrawSensor();
  EXPECT_NE(canvas.Render().find('@'), std::string::npos);
}

TEST(BevRenderTest, PointsDensityGlyphs) {
  BevRenderConfig cfg;
  BevCanvas canvas(cfg);
  pc::PointCloud sparse;
  sparse.Add({5, 5, 0}, 0.5f);
  canvas.DrawPoints(sparse);
  EXPECT_NE(canvas.Render().find('.'), std::string::npos);

  pc::PointCloud dense;
  for (std::size_t i = 0; i < cfg.dense_points + 2; ++i) dense.Add({8, 8, 0}, 0.5f);
  canvas.DrawPoints(dense);
  EXPECT_NE(canvas.Render().find(':'), std::string::npos);
}

TEST(BevRenderTest, ClassGlyphs) {
  BevCanvas canvas;
  canvas.DrawDetections({Det(10, 0, 0.9, spod::ObjectClass::kCar),
                         Det(20, 5, 0.8, spod::ObjectClass::kPedestrian),
                         Det(30, -5, 0.7, spod::ObjectClass::kCyclist),
                         Det(40, 10, 0.3)});
  const std::string out = canvas.Render();
  EXPECT_NE(out.find('C'), std::string::npos);
  EXPECT_NE(out.find('P'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(BevRenderTest, GroundTruthOutlineDrawn) {
  BevCanvas canvas;
  canvas.DrawGroundTruth({geom::Box3{{20, 0, 0.75}, 8, 6, 1.5, 0.5}});
  const std::string out = canvas.Render();
  std::size_t hashes = 0;
  for (const char c : out) hashes += c == '#';
  EXPECT_GT(hashes, 10u);
}

TEST(BevRenderTest, OutOfBoundsContentIgnored) {
  BevCanvas canvas;
  pc::PointCloud cloud;
  cloud.Add({1000, 1000, 0}, 0.5f);
  canvas.DrawPoints(cloud);
  canvas.DrawDetections({Det(-500, 0, 0.9)});
  const std::string out = canvas.Render();
  // Inspect only the grid (the legend line itself contains '.' and 'C').
  const std::string grid = out.substr(0, out.find("legend:"));
  EXPECT_EQ(grid.find('.'), std::string::npos);
  EXPECT_EQ(grid.find('C'), std::string::npos);
}

TEST(BevRenderTest, DetectionsOverwritePoints) {
  BevCanvas canvas;
  pc::PointCloud cloud;
  cloud.Add({10, 0, 0}, 0.5f);
  canvas.DrawPoints(cloud);
  canvas.DrawDetections({Det(10, 0, 0.9)});
  const std::string out = canvas.Render();
  EXPECT_NE(out.find('C'), std::string::npos);
}

}  // namespace
}  // namespace cooper::eval
