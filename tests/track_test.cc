#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "track/kalman.h"
#include "track/tracker.h"

namespace cooper::track {
namespace {

spod::Detection Det(double x, double y, double score = 0.8) {
  spod::Detection d;
  d.box = geom::Box3{{x, y, 0.75}, 4.5, 1.8, 1.5, 0.0};
  d.score = score;
  return d;
}

// --- Kalman filter ---

TEST(KalmanTest, InitialStateAtMeasurement) {
  const KalmanCv2d kf({3, -2, 0}, {});
  EXPECT_DOUBLE_EQ(kf.position().x, 3.0);
  EXPECT_DOUBLE_EQ(kf.position().y, -2.0);
  EXPECT_DOUBLE_EQ(kf.velocity().Norm(), 0.0);
}

TEST(KalmanTest, ConvergesToConstantVelocityTrack) {
  KalmanCv2d kf({0, 0, 0}, {});
  // Object moving at (2, -1) m/s, measured at 10 Hz.
  for (int step = 1; step <= 40; ++step) {
    kf.Predict(0.1);
    kf.Update({0.2 * step, -0.1 * step, 0});
  }
  EXPECT_NEAR(kf.velocity().x, 2.0, 0.2);
  EXPECT_NEAR(kf.velocity().y, -1.0, 0.2);
  EXPECT_NEAR(kf.position().x, 8.0, 0.2);
}

TEST(KalmanTest, PredictionCoastsAlongVelocity) {
  KalmanCv2d kf({0, 0, 0}, {});
  for (int step = 1; step <= 30; ++step) {
    kf.Predict(0.1);
    kf.Update({1.0 * 0.1 * step, 0, 0});
  }
  const double x_before = kf.position().x;
  kf.Predict(1.0);  // one second without measurements
  EXPECT_NEAR(kf.position().x - x_before, 1.0, 0.2);
}

TEST(KalmanTest, UncertaintyGrowsWithoutMeasurements) {
  KalmanCv2d kf({0, 0, 0}, {});
  kf.Update({0, 0, 0});
  const double before = kf.PositionVariance();
  kf.Predict(1.0);
  EXPECT_GT(kf.PositionVariance(), before);
}

TEST(KalmanTest, UpdateShrinksUncertainty) {
  KalmanCv2d kf({0, 0, 0}, {});
  kf.Predict(1.0);
  const double before = kf.PositionVariance();
  kf.Update({0.1, 0, 0});
  EXPECT_LT(kf.PositionVariance(), before);
}

TEST(KalmanTest, NoisyMeasurementsAreSmoothed) {
  Rng rng(3);
  KalmanCv2d kf({0, 0, 0}, {});
  double final_err = 0.0;
  for (int step = 1; step <= 100; ++step) {
    kf.Predict(0.1);
    const double truth = 0.15 * step;
    kf.Update({truth + rng.Normal(0, 0.4), rng.Normal(0, 0.4), 0});
    final_err = std::abs(kf.position().x - truth);
  }
  EXPECT_LT(final_err, 0.35);  // below the single-measurement noise
}

TEST(KalmanTest, GatingDistanceSeparatesNearAndFar) {
  KalmanCv2d kf({0, 0, 0}, {});
  kf.Update({0, 0, 0});
  EXPECT_LT(kf.GatingDistance({0.2, 0, 0}), kf.GatingDistance({5.0, 0, 0}));
  EXPECT_GT(kf.GatingDistance({5.0, 0, 0}), 9.21);  // outside 99% gate
}

// --- Tracker ---

TEST(TrackerTest, ConfirmsAfterMinHits) {
  Tracker tracker;
  tracker.Step({Det(10, 0)}, 0.1);
  EXPECT_EQ(tracker.ConfirmedTracks().size(), 0u);  // tentative
  tracker.Step({Det(10.1, 0)}, 0.1);
  EXPECT_EQ(tracker.ConfirmedTracks().size(), 1u);
  EXPECT_EQ(tracker.total_confirmed(), 1u);
}

TEST(TrackerTest, LowScoreDetectionsIgnored) {
  Tracker tracker;
  tracker.Step({Det(10, 0, 0.3)}, 0.1);
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(TrackerTest, TrackSurvivesShortOcclusion) {
  Tracker tracker;
  for (int i = 0; i < 3; ++i) tracker.Step({Det(10 + 0.1 * i, 0)}, 0.1);
  ASSERT_EQ(tracker.ConfirmedTracks().size(), 1u);
  const auto id = tracker.ConfirmedTracks()[0]->id;
  // Three missed frames (== max_consecutive_misses) then reappearance.
  for (int i = 0; i < 3; ++i) tracker.Step({}, 0.1);
  tracker.Step({Det(10.9, 0)}, 0.1);
  ASSERT_EQ(tracker.ConfirmedTracks().size(), 1u);
  EXPECT_EQ(tracker.ConfirmedTracks()[0]->id, id);  // same identity
  EXPECT_EQ(tracker.total_confirmed(), 1u);         // no fragmentation
}

TEST(TrackerTest, LongOcclusionFragmentsTrack) {
  Tracker tracker;
  for (int i = 0; i < 3; ++i) tracker.Step({Det(10, 0)}, 0.1);
  ASSERT_EQ(tracker.ConfirmedTracks().size(), 1u);
  for (int i = 0; i < 6; ++i) tracker.Step({}, 0.1);  // track dies
  EXPECT_TRUE(tracker.tracks().empty());
  for (int i = 0; i < 2; ++i) tracker.Step({Det(10.5, 0)}, 0.1);
  EXPECT_EQ(tracker.total_confirmed(), 2u);  // re-confirmed under a new id
}

TEST(TrackerTest, TwoObjectsTwoTracks) {
  Tracker tracker;
  for (int i = 0; i < 3; ++i) {
    tracker.Step({Det(10, 5), Det(10, -5)}, 0.1);
  }
  EXPECT_EQ(tracker.ConfirmedTracks().size(), 2u);
}

TEST(TrackerTest, AssociationPrefersNearestTrack) {
  Tracker tracker;
  for (int i = 0; i < 3; ++i) tracker.Step({Det(0, 5), Det(0, -5)}, 0.1);
  // One detection between them but nearer the first.
  tracker.Step({Det(0, 3.5)}, 0.1);
  double y_upper = -100, y_lower = 100;
  for (const auto* t : tracker.ConfirmedTracks()) {
    y_upper = std::max(y_upper, t->filter.position().y);
    y_lower = std::min(y_lower, t->filter.position().y);
  }
  EXPECT_GT(y_upper, 3.4);   // upper track pulled toward 3.5
  EXPECT_NEAR(y_lower, -5.0, 0.3);  // lower track coasted
}

TEST(TrackerTest, MovingObjectTracked) {
  Tracker tracker;
  for (int step = 0; step < 20; ++step) {
    tracker.Step({Det(2.0 * 0.1 * step, 0)}, 0.1);  // 2 m/s
  }
  ASSERT_EQ(tracker.ConfirmedTracks().size(), 1u);
  EXPECT_NEAR(tracker.ConfirmedTracks()[0]->filter.velocity().x, 2.0, 0.4);
  EXPECT_EQ(tracker.total_confirmed(), 1u);
}

TEST(TrackerTest, TentativeTrackDiesFast) {
  Tracker tracker;
  tracker.Step({Det(10, 0)}, 0.1);   // one hit, tentative
  tracker.Step({}, 0.1);
  tracker.Step({}, 0.1);
  EXPECT_TRUE(tracker.tracks().empty());
}

}  // namespace
}  // namespace cooper::track
