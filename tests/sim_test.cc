#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/lidar.h"
#include "sim/scenario.h"
#include "sim/scene.h"
#include "sim/sensors.h"

namespace cooper::sim {
namespace {

// --- Ray-box intersection ---

TEST(RayBoxTest, HeadOnHitDistance) {
  const geom::Box3 box{{10, 0, 0}, 2, 2, 2, 0};
  const auto t = RayBoxIntersect({0, 0, 0}, {1, 0, 0}, box, 0.0, 100.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 9.0, 1e-9);
}

TEST(RayBoxTest, MissesOffsetBox) {
  const geom::Box3 box{{10, 5, 0}, 2, 2, 2, 0};
  EXPECT_FALSE(RayBoxIntersect({0, 0, 0}, {1, 0, 0}, box, 0.0, 100.0));
}

TEST(RayBoxTest, RespectsTminTmax) {
  const geom::Box3 box{{10, 0, 0}, 2, 2, 2, 0};
  EXPECT_FALSE(RayBoxIntersect({0, 0, 0}, {1, 0, 0}, box, 0.0, 5.0));
  EXPECT_FALSE(RayBoxIntersect({0, 0, 0}, {1, 0, 0}, box, 20.0, 100.0));
}

TEST(RayBoxTest, RotatedBoxHit) {
  // A 45-degree rotated long box straddling the x-axis.
  const geom::Box3 box{{10, 0, 0}, 6, 1, 2, geom::DegToRad(45)};
  const auto t = RayBoxIntersect({0, 0, 0}, {1, 0, 0}, box, 0.0, 100.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 8.0);
  EXPECT_LT(*t, 10.0);
}

TEST(RayBoxTest, RayStartingInsideReturnsClampedEntry) {
  const geom::Box3 box{{0, 0, 0}, 4, 4, 4, 0};
  const auto t = RayBoxIntersect({0, 0, 0}, {1, 0, 0}, box, 0.5, 100.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-9);  // clamped to t_min while inside
}

TEST(RayBoxTest, ParallelRayOutsideSlabMisses) {
  const geom::Box3 box{{10, 0, 0}, 2, 2, 2, 0};
  EXPECT_FALSE(RayBoxIntersect({0, 5, 0}, {1, 0, 0}, box, 0.0, 100.0));
}

// --- Scene casting ---

TEST(SceneTest, NearestObjectWins) {
  Scene scene;
  scene.AddObject(ObjectClass::kCar, geom::Box3{{20, 0, 1}, 2, 2, 2, 0});
  const int near_id =
      scene.AddObject(ObjectClass::kCar, geom::Box3{{10, 0, 1}, 2, 2, 2, 0});
  const auto hit = scene.CastRay({0, 0, 1}, {1, 0, 0}, 0.1, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->object_id, near_id);
  EXPECT_NEAR(hit->t, 9.0, 1e-9);
}

TEST(SceneTest, GroundPlaneReturnsWhenNothingElse) {
  Scene scene;
  const auto hit = scene.CastRay({0, 0, 2}, {std::sqrt(0.5), 0, -std::sqrt(0.5)},
                                 0.1, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->object_id, -1);
  EXPECT_NEAR(hit->point.z, 0.0, 1e-9);
}

TEST(SceneTest, UpwardRayHitsNothing) {
  Scene scene;
  EXPECT_FALSE(scene.CastRay({0, 0, 2}, {0, 0, 1}, 0.1, 100.0));
}

TEST(SceneTest, ObjectOccludesGround) {
  Scene scene;
  const int id = scene.AddObject(ObjectClass::kWall,
                                 MakeWallBox({5, 0, 0}, 90.0, 10.0, 3.0));
  const auto hit = scene.CastRay({0, 0, 1.5}, {std::cos(-0.05), 0, std::sin(-0.05)},
                                 0.1, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->object_id, id);
}

TEST(SceneTest, TargetsFilterOccluders) {
  Scene scene;
  scene.AddObject(ObjectClass::kCar, MakeCarBox({5, 0, 0}, 0));
  scene.AddObject(ObjectClass::kWall, MakeWallBox({9, 0, 0}, 0, 5));
  scene.AddObject(ObjectClass::kBuilding, geom::Box3{{20, 0, 4}, 8, 8, 8, 0});
  scene.AddObject(ObjectClass::kPedestrian, MakePedestrianBox({3, 3, 0}));
  EXPECT_EQ(scene.Targets().size(), 2u);  // car + pedestrian
}

TEST(SceneTest, FindObjectById) {
  Scene scene;
  const int id = scene.AddObject(ObjectClass::kCar, MakeCarBox({5, 0, 0}, 0));
  ASSERT_NE(scene.FindObject(id), nullptr);
  EXPECT_EQ(scene.FindObject(id)->cls, ObjectClass::kCar);
  EXPECT_EQ(scene.FindObject(id + 999), nullptr);
}

TEST(SceneTest, ObjectClassNames) {
  EXPECT_STREQ(ObjectClassName(ObjectClass::kCar), "car");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kWall), "wall");
  EXPECT_TRUE(IsTargetClass(ObjectClass::kCyclist));
  EXPECT_FALSE(IsTargetClass(ObjectClass::kBuilding));
}

TEST(SceneTest, StandardBoxDimensions) {
  const auto car = MakeCarBox({0, 0, 0}, 0);
  EXPECT_NEAR(car.length, 4.5, 1e-9);
  EXPECT_NEAR(car.center.z, 0.75, 1e-9);  // sits on the ground
  const auto ped = MakePedestrianBox({0, 0, 0});
  EXPECT_NEAR(ped.height, 1.8, 1e-9);
}

// --- LiDAR simulator ---

LidarConfig FastLidar(int beams) {
  LidarConfig c = beams >= 32 ? Hdl64Config() : Vlp16Config();
  c.azimuth_steps = 360;  // keep tests fast
  c.range_noise_stddev = 0.0;
  c.dropout_prob = 0.0;
  return c;
}

// World box expressed in the sensor frame of a vehicle at `pose` (the scan's
// frame): shift by the sensor mount height.
geom::Box3 InSensorFrame(const geom::Box3& box, const LidarConfig& cfg) {
  geom::Box3 b = box;
  b.center.z -= cfg.sensor_height;
  return b;
}

TEST(LidarTest, ScanReturnsPointsOnCar) {
  Scene scene;
  const auto box = MakeCarBox({10, 0, 0}, 0);
  scene.AddObject(ObjectClass::kCar, box);
  Rng rng(1);
  const LidarConfig cfg = FastLidar(64);
  const LidarSimulator lidar(cfg);
  const auto cloud = lidar.Scan(scene, geom::Pose::Identity(), rng);
  EXPECT_GT(cloud.CountInBox(InSensorFrame(box, cfg).Expanded(0.1)), 50u);
}

TEST(LidarTest, CloudIsInSensorFrame) {
  Scene scene;  // flat ground only
  Rng rng(2);
  LidarConfig cfg = FastLidar(64);
  const LidarSimulator lidar(cfg);
  // Vehicle far from the origin; sensor-frame points must still be near 0.
  const auto pose = geom::Pose::FromGpsImu({500, -300, 0}, {1.0, 0, 0});
  const auto cloud = lidar.Scan(scene, pose, rng);
  ASSERT_GT(cloud.size(), 100u);
  for (const auto& p : cloud) {
    EXPECT_LT(p.position.NormXY(), cfg.max_range + 1.0);
    // Ground points sit ~sensor_height below the sensor.
    EXPECT_NEAR(p.position.z, -cfg.sensor_height, 0.2);
  }
}

TEST(LidarTest, OcclusionCreatesShadow) {
  Scene scene;
  scene.AddObject(ObjectClass::kWall, MakeWallBox({8, 0, 0}, 90.0, 12.0, 3.0));
  const auto hidden = MakeCarBox({15, 0, 0}, 0);
  scene.AddObject(ObjectClass::kCar, hidden);
  Rng rng(3);
  const LidarConfig cfg = FastLidar(64);
  const auto cloud = LidarSimulator(cfg).Scan(scene, geom::Pose::Identity(), rng);
  EXPECT_EQ(cloud.CountInBox(InSensorFrame(hidden, cfg).Expanded(0.05)), 0u);
}

TEST(LidarTest, SixteenBeamIsSparserThanSixtyFour) {
  Scene scene;
  const auto box = MakeCarBox({12, 2, 0}, 25.0);
  scene.AddObject(ObjectClass::kCar, box);
  Rng rng(4);
  const LidarConfig cfg64 = FastLidar(64), cfg16 = FastLidar(16);
  const auto c64 = LidarSimulator(cfg64).Scan(scene, geom::Pose::Identity(), rng);
  const auto c16 = LidarSimulator(cfg16).Scan(scene, geom::Pose::Identity(), rng);
  const auto on64 = c64.CountInBox(InSensorFrame(box, cfg64).Expanded(0.1));
  const auto on16 = c16.CountInBox(InSensorFrame(box, cfg16).Expanded(0.1));
  EXPECT_GT(on64, on16 * 2);  // denser vertical sampling on the same target
}

TEST(LidarTest, DropoutReducesReturns) {
  Scene scene;
  Rng rng1(5), rng2(5);
  LidarConfig clean = FastLidar(16);
  LidarConfig lossy = clean;
  lossy.dropout_prob = 0.5;
  const auto full = LidarSimulator(clean).Scan(scene, geom::Pose::Identity(), rng1);
  const auto half = LidarSimulator(lossy).Scan(scene, geom::Pose::Identity(), rng2);
  EXPECT_NEAR(static_cast<double>(half.size()) / full.size(), 0.5, 0.05);
}

TEST(LidarTest, RangeNoisePerturbsGently) {
  Scene scene;
  scene.AddObject(ObjectClass::kWall, MakeWallBox({20, 0, 0}, 90.0, 40.0, 4.0));
  LidarConfig noisy = FastLidar(64);
  noisy.range_noise_stddev = 0.05;
  Rng rng(6);
  const auto cloud = LidarSimulator(noisy).Scan(scene, geom::Pose::Identity(), rng);
  // Wall points should be near x = 19.85 (front face) +- noise.
  std::size_t wallish = 0;
  for (const auto& p : cloud) {
    if (p.position.x > 15 && std::abs(p.position.y) < 15 && p.position.z > -1.0) {
      ++wallish;
      EXPECT_NEAR(p.position.x, 19.85, 0.5);
    }
  }
  EXPECT_GT(wallish, 50u);
}

TEST(LidarTest, ExpectedPointsDecreasesWithRange) {
  const LidarSimulator lidar(Hdl64Config());
  EXPECT_GT(lidar.ExpectedPointsOnCar(10.0), lidar.ExpectedPointsOnCar(30.0));
  EXPECT_GT(lidar.ExpectedPointsOnCar(30.0), lidar.ExpectedPointsOnCar(60.0));
  EXPECT_EQ(lidar.ExpectedPointsOnCar(0.0), 0.0);
}

TEST(LidarTest, PresetConfigsMatchHardware) {
  EXPECT_EQ(Hdl64Config().beams, 64);
  EXPECT_EQ(Vlp16Config().beams, 16);
  EXPECT_NEAR(Vlp16Config().fov_up_deg, 15.0, 1e-9);
  EXPECT_NEAR(Hdl64Config().fov_down_deg, -24.8, 1e-9);
}

// --- GPS/IMU sensors ---

TEST(SensorsTest, MeasurementNoiseIsCalibrated) {
  const GpsImuModel model;
  Rng rng(7);
  double sq = 0.0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const NavState s = model.Measure({10, 20, 0}, {0.5, 0, 0}, rng);
    sq += (s.position - geom::Vec3{10, 20, 0}).SquaredNorm();
  }
  // 3 axes x (0.02)^2 each.
  EXPECT_NEAR(sq / kN, 3 * 0.02 * 0.02, 2e-4);
}

TEST(SensorsTest, NavStateToPoseUsesGpsAndImu) {
  NavState s;
  s.position = {1, 2, 3};
  s.attitude = {geom::DegToRad(90), 0, 0};
  const geom::Pose p = s.ToPose();
  const geom::Vec3 mapped = p * geom::Vec3{1, 0, 0};
  EXPECT_NEAR(mapped.x, 1.0, 1e-9);
  EXPECT_NEAR(mapped.y, 3.0, 1e-9);
}

TEST(SensorsTest, SkewMagnitudes) {
  Rng rng(8);
  NavState base;
  base.position = {0, 0, 0};
  for (int i = 0; i < 50; ++i) {
    const auto both = ApplyGpsSkew(base, GpsSkewMode::kBothAxesMax, rng);
    EXPECT_NEAR(std::abs(both.position.x), kMaxGpsDrift, 1e-12);
    EXPECT_NEAR(std::abs(both.position.y), kMaxGpsDrift, 1e-12);

    const auto one = ApplyGpsSkew(base, GpsSkewMode::kOneAxisMax, rng);
    const double moved = std::abs(one.position.x) + std::abs(one.position.y);
    EXPECT_NEAR(moved, kMaxGpsDrift, 1e-12);  // exactly one axis skewed

    const auto dbl = ApplyGpsSkew(base, GpsSkewMode::kDoubleMax, rng);
    EXPECT_NEAR(std::abs(dbl.position.x), 2 * kMaxGpsDrift, 1e-12);
  }
}

TEST(SensorsTest, NoSkewIsIdentity) {
  Rng rng(9);
  NavState base;
  base.position = {5, 6, 7};
  const auto out = ApplyGpsSkew(base, GpsSkewMode::kNone, rng);
  EXPECT_EQ(out.position, base.position);
}

TEST(SensorsTest, SkewModeNames) {
  EXPECT_STREQ(GpsSkewModeName(GpsSkewMode::kNone), "baseline");
  EXPECT_STREQ(GpsSkewModeName(GpsSkewMode::kDoubleMax), "double-max");
}

// --- Scenario library ---

TEST(ScenarioTest, KittiScenariosMatchPaperDeltaD) {
  // Fig. 3 annotations: 14.7, 13.3, 0, 48.1 metres.
  const auto scenarios = AllKittiScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_NEAR(CaseDeltaD(scenarios[0], scenarios[0].cases[0]), 14.7, 1e-6);
  EXPECT_NEAR(CaseDeltaD(scenarios[1], scenarios[1].cases[0]), 13.3, 1e-6);
  EXPECT_NEAR(CaseDeltaD(scenarios[2], scenarios[2].cases[0]), 0.0, 1e-6);
  EXPECT_NEAR(CaseDeltaD(scenarios[3], scenarios[3].cases[0]), 48.1, 1.0);
}

TEST(ScenarioTest, KittiUsesDenseLidar) {
  for (const auto& sc : AllKittiScenarios()) {
    EXPECT_EQ(sc.lidar.beams, 64) << sc.name;
  }
}

TEST(ScenarioTest, TjUsesSparseLidar) {
  for (const auto& sc : AllTjScenarios()) {
    EXPECT_EQ(sc.lidar.beams, 16) << sc.name;
  }
}

TEST(ScenarioTest, TjCaseCountMatchesPaper) {
  // 15 cooperative cases across the four T&J scenarios (3 + 4 + 4 + 4).
  std::size_t cases = 0;
  for (const auto& sc : AllTjScenarios()) cases += sc.cases.size();
  EXPECT_EQ(cases, 15u);
}

TEST(ScenarioTest, NineteenScenariosTotal) {
  // The paper evaluates 19 cooperative-perception cases in total.
  std::size_t cases = 0;
  for (const auto& sc : AllKittiScenarios()) cases += sc.cases.size();
  for (const auto& sc : AllTjScenarios()) cases += sc.cases.size();
  EXPECT_EQ(cases, 19u);
}

TEST(ScenarioTest, CasesReferenceValidViewpoints) {
  auto all = AllKittiScenarios();
  for (auto& sc : AllTjScenarios()) all.push_back(sc);
  for (const auto& sc : all) {
    EXPECT_FALSE(sc.viewpoints.empty()) << sc.name;
    EXPECT_GE(sc.scene.Targets().size(), 5u) << sc.name;
    for (const auto& cc : sc.cases) {
      ASSERT_GE(cc.a, 0);
      ASSERT_GE(cc.b, 0);
      ASSERT_LT(static_cast<std::size_t>(cc.a), sc.viewpoints.size()) << sc.name;
      ASSERT_LT(static_cast<std::size_t>(cc.b), sc.viewpoints.size()) << sc.name;
      EXPECT_NE(cc.a, cc.b) << sc.name;
    }
  }
}

TEST(ScenarioTest, ScenariosAreDeterministic) {
  const auto a = MakeTjScenario(2);
  const auto b = MakeTjScenario(2);
  ASSERT_EQ(a.scene.objects().size(), b.scene.objects().size());
  for (std::size_t i = 0; i < a.scene.objects().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.scene.objects()[i].box.center.x,
                     b.scene.objects()[i].box.center.x);
  }
}

TEST(ScenarioTest, TjDistancesSpreadAcrossCases) {
  // Fig. 6 samples fusion at increasing cooperator distances per scenario.
  const auto sc = MakeTjScenario(1);
  ASSERT_EQ(sc.cases.size(), 3u);
  const double d0 = CaseDeltaD(sc, sc.cases[0]);
  const double d1 = CaseDeltaD(sc, sc.cases[1]);
  const double d2 = CaseDeltaD(sc, sc.cases[2]);
  EXPECT_LT(d0, d1);
  EXPECT_LT(d1, d2);
}

}  // namespace
}  // namespace cooper::sim
