// Bit-exactness tests for the common::simd kernel layer.
//
// Every vector tier must reproduce the scalar reference bit-for-bit on every
// input, including the awkward ones: tails of every length around the lane
// width, NaN/inf payloads, signed zeros, denormals.  The sweeps below run
// each kernel at n = 0..kMaxSweep (three times the widest lane count) for
// every compiled-in tier and compare raw bit patterns — a ULP tolerance
// would defeat the replay conformance contract these kernels back.
#include "common/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace cooper::common::simd {
namespace {

// Three times the widest lane count in any tier (AVX2: 8 floats), rounded
// up so double-lane kernels (4/iter) also see >2 full vectors plus tails.
constexpr std::size_t kMaxSweep = 3 * 8 + 3;

std::vector<const Kernels*> CompiledTiers() {
  std::vector<const Kernels*> tiers;
  for (const Tier t : {Tier::kScalar, Tier::kSse42, Tier::kAvx2, Tier::kNeon}) {
    if (const Kernels* k = TierKernels(t)) tiers.push_back(k);
  }
  return tiers;
}

const Kernels& Scalar() { return *TierKernels(Tier::kScalar); }

// n == 0 short-circuits: data() of an empty vector may be null, and memcmp
// with a null pointer is UB even at size 0 (UBSan rejects it).
bool BitEqual(const float* a, const float* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

bool BitEqual(const double* a, const double* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(double)) == 0;
}

bool BytesEqual(const void* a, const void* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

// Deterministic payload mixing ordinary values with the special cases that
// break naive vectorizations: NaN, +/-inf, +/-0, denormals, huge magnitudes.
float SpecialFloat(std::mt19937& rng) {
  switch (rng() % 12) {
    case 0: return std::numeric_limits<float>::quiet_NaN();
    case 1: return std::numeric_limits<float>::infinity();
    case 2: return -std::numeric_limits<float>::infinity();
    case 3: return 0.0f;
    case 4: return -0.0f;
    case 5: return std::numeric_limits<float>::denorm_min();
    case 6: return -std::numeric_limits<float>::max();
    default: {
      std::uniform_real_distribution<float> d(-100.0f, 100.0f);
      return d(rng);
    }
  }
}

std::vector<float> SpecialRow(std::mt19937& rng, std::size_t n) {
  std::vector<float> row(n);
  for (float& v : row) v = SpecialFloat(rng);
  return row;
}

TEST(SimdDispatch, ScalarTierAlwaysCompiledIn) {
  ASSERT_NE(TierKernels(Tier::kScalar), nullptr);
  EXPECT_EQ(TierKernels(Tier::kScalar)->tier, Tier::kScalar);
  EXPECT_TRUE(TierAvailable(Tier::kScalar));
}

TEST(SimdDispatch, DetectedTierIsAvailableAndOrdered) {
  const Tier best = DetectedTier();
  EXPECT_TRUE(TierAvailable(best));
  // Every tier at or below the detected one (same architecture family) that
  // was compiled in must be usable.
  for (const Kernels* k : CompiledTiers()) {
    if (static_cast<int>(k->tier) <= static_cast<int>(best)) {
      EXPECT_TRUE(TierAvailable(k->tier)) << TierName(k->tier);
    }
  }
}

TEST(SimdDispatch, ParseModeAcceptsKnobValuesOnly) {
  EXPECT_EQ(ParseMode("auto"), Mode::kAuto);
  EXPECT_EQ(ParseMode("scalar"), Mode::kScalar);
  EXPECT_EQ(ParseMode("sse4.2"), Mode::kSse42);
  EXPECT_EQ(ParseMode("avx2"), Mode::kAvx2);
  EXPECT_EQ(ParseMode("neon"), Mode::kNeon);
  EXPECT_FALSE(ParseMode("").has_value());
  EXPECT_FALSE(ParseMode("AVX2").has_value());
  EXPECT_FALSE(ParseMode("sse42").has_value());
  EXPECT_FALSE(ParseMode("fastest").has_value());
}

TEST(SimdDispatch, SetModeForcesAndRestores) {
  SetMode(Mode::kScalar);
  EXPECT_EQ(ActiveTier(), Tier::kScalar);
  EXPECT_EQ(&Active(), TierKernels(Tier::kScalar));
  SetMode(Mode::kAuto);
  EXPECT_EQ(ActiveTier(), DetectedTier());
}

TEST(SimdDispatch, ForcingUnavailableTierClampsToDetected) {
#if defined(__aarch64__)
  const Mode foreign = Mode::kAvx2;  // x86 tier on an arm build
#else
  const Mode foreign = Mode::kNeon;  // arm tier on an x86 build
#endif
  SetMode(foreign);
  EXPECT_EQ(ActiveTier(), DetectedTier());
  SetMode(Mode::kAuto);
}

TEST(SimdDispatch, NamesRoundTrip) {
  EXPECT_STREQ(TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(ModeName(Mode::kAuto), "auto");
  for (const Kernels* k : CompiledTiers()) {
    const auto mode = ParseMode(TierName(k->tier));
    ASSERT_TRUE(mode.has_value()) << TierName(k->tier);
    EXPECT_EQ(static_cast<int>(*mode), static_cast<int>(k->tier));
  }
  // The feature string is stamped into bench headers; it must be non-empty.
  EXPECT_FALSE(CpuFeatureString().empty());
}

TEST(SimdSweep, FillMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0001);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      for (const float v : {1.25f, -0.0f, std::numeric_limits<float>::quiet_NaN()}) {
        std::vector<float> got(n + 1, 77.0f), want(n + 1, 77.0f);
        Scalar().fill(want.data(), v, n);
        k->fill(got.data(), v, n);
        EXPECT_TRUE(BitEqual(got.data(), want.data(), n + 1))
            << TierName(k->tier) << " fill n=" << n;
      }
    }
    (void)rng;
  }
}

TEST(SimdSweep, SaxpyMatchesScalarAtEveryTail) {
  // Special values go into x and y in separate sweeps, never both: when y
  // and a*x are BOTH NaN, the add's result payload depends on operand
  // order, which the compiler may commute (addition is commutative except
  // for NaN payloads, which C++ leaves unspecified) — so that one case is
  // outside the bit-exactness contract (see the saxpy doc in simd.h).  A
  // single NaN/inf on either side still propagates deterministically.
  std::mt19937 rng(0x5eed0002);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      const std::vector<float> x_special = SpecialRow(rng, n);
      const std::vector<float> y_special = SpecialRow(rng, n + 1);
      std::vector<float> finite(n + 1);
      for (float& v : finite) {
        std::uniform_real_distribution<float> d(-100.0f, 100.0f);
        v = rng() % 8 == 0 ? -0.0f : d(rng);
      }
      for (const float a : {0.5f, -3.0f, 0.0f}) {
        {
          std::vector<float> got = finite, want = finite;
          got[n] = want[n] = 42.0f;  // overrun canary
          Scalar().saxpy(want.data(), x_special.data(), a, n);
          k->saxpy(got.data(), x_special.data(), a, n);
          EXPECT_TRUE(BitEqual(got.data(), want.data(), n + 1))
              << TierName(k->tier) << " saxpy special-x n=" << n << " a=" << a;
        }
        {
          std::vector<float> got = y_special, want = y_special;
          got[n] = want[n] = 42.0f;
          Scalar().saxpy(want.data(), finite.data(), a, n);
          k->saxpy(got.data(), finite.data(), a, n);
          EXPECT_TRUE(BitEqual(got.data(), want.data(), n + 1))
              << TierName(k->tier) << " saxpy special-y n=" << n << " a=" << a;
        }
      }
    }
  }
}

TEST(SimdSweep, ReluMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0003);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      std::vector<float> base = SpecialRow(rng, n + 1);
      std::vector<float> got = base, want = base;
      Scalar().relu(want.data(), n);
      k->relu(got.data(), n);
      EXPECT_TRUE(BitEqual(got.data(), want.data(), n + 1))
          << TierName(k->tier) << " relu n=" << n;
    }
  }
}

TEST(SimdSweep, MaxIntoMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0004);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      const std::vector<float> src = SpecialRow(rng, n);
      std::vector<float> base = SpecialRow(rng, n + 1);
      std::vector<float> got = base, want = base;
      Scalar().max_into(want.data(), src.data(), n);
      k->max_into(got.data(), src.data(), n);
      EXPECT_TRUE(BitEqual(got.data(), want.data(), n + 1))
          << TierName(k->tier) << " max_into n=" << n;
    }
  }
}

TEST(SimdSweep, RangeNonzeroFiniteMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0005);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      // Accumulate several rows so both the first-touch (any=0) and the
      // running-update paths get exercised per channel.
      std::vector<float> lo_w(n, 0.0f), hi_w(n, 0.0f);
      std::vector<float> lo_g(n, 0.0f), hi_g(n, 0.0f);
      std::vector<std::uint8_t> any_w(n, 0), any_g(n, 0);
      for (int row_i = 0; row_i < 4; ++row_i) {
        const std::vector<float> row = SpecialRow(rng, n);
        Scalar().range_nonzero_finite(row.data(), n, lo_w.data(), hi_w.data(),
                                      any_w.data());
        k->range_nonzero_finite(row.data(), n, lo_g.data(), hi_g.data(),
                                any_g.data());
      }
      EXPECT_TRUE(BitEqual(lo_g.data(), lo_w.data(), n))
          << TierName(k->tier) << " range lo n=" << n;
      EXPECT_TRUE(BitEqual(hi_g.data(), hi_w.data(), n))
          << TierName(k->tier) << " range hi n=" << n;
      EXPECT_TRUE(BytesEqual(any_g.data(), any_w.data(), n))
          << TierName(k->tier) << " range any n=" << n;
    }
  }
}

TEST(SimdSweep, QuantizeRowMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0006);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      const std::vector<float> row = SpecialRow(rng, n);
      std::vector<float> zero(n), scale(n);
      std::uniform_real_distribution<float> zd(-50.0f, 50.0f);
      for (std::size_t c = 0; c < n; ++c) {
        zero[c] = zd(rng);
        // Mix zero scales (dead channel -> q=0) with tiny/ordinary ones,
        // including a scale that maps row values near the half-way point.
        switch (rng() % 4) {
          case 0: scale[c] = 0.0f; break;
          case 1: scale[c] = 1e-6f; break;
          case 2: scale[c] = 0.5f; break;
          default: scale[c] = zd(rng) * zd(rng) * 1e-3f + 1.0f; break;
        }
        if (scale[c] < 0) scale[c] = -scale[c];
      }
      for (const double qmax : {0.0, 255.0, 4095.0}) {
        std::vector<std::uint16_t> q_w(n, 9), q_g(n, 9);
        std::vector<std::uint8_t> a_w(n, 7), a_g(n, 7);
        Scalar().quantize_row(row.data(), n, zero.data(), scale.data(), qmax,
                              q_w.data(), a_w.data());
        k->quantize_row(row.data(), n, zero.data(), scale.data(), qmax,
                        q_g.data(), a_g.data());
        EXPECT_TRUE(BytesEqual(q_g.data(), q_w.data(), n * 2))
            << TierName(k->tier) << " quantize q n=" << n << " qmax=" << qmax;
        EXPECT_TRUE(BytesEqual(a_g.data(), a_w.data(), n))
            << TierName(k->tier) << " quantize active n=" << n;
      }
    }
  }
}

TEST(SimdSweep, DequantizeRowMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0007);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      std::vector<std::uint16_t> q(n);
      std::vector<std::uint8_t> active(n);
      std::vector<float> zero(n), scale(n);
      std::uniform_real_distribution<float> zd(-50.0f, 50.0f);
      for (std::size_t c = 0; c < n; ++c) {
        q[c] = static_cast<std::uint16_t>(rng());
        active[c] = static_cast<std::uint8_t>(rng() % 2);
        zero[c] = zd(rng);
        scale[c] = std::abs(zd(rng)) * 1e-2f;
      }
      std::vector<float> out_w(n + 1, 5.0f), out_g(n + 1, 5.0f);
      Scalar().dequantize_row(q.data(), active.data(), n, zero.data(),
                              scale.data(), out_w.data());
      k->dequantize_row(q.data(), active.data(), n, zero.data(), scale.data(),
                        out_g.data());
      EXPECT_TRUE(BitEqual(out_g.data(), out_w.data(), n + 1))
          << TierName(k->tier) << " dequantize n=" << n;
    }
  }
}

TEST(SimdSweep, RigidTransformMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0008);
  std::uniform_real_distribution<double> d(-10.0, 10.0);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      double rt[12];
      for (double& v : rt) v = d(rng);
      for (const std::size_t stride : {std::size_t{3}, std::size_t{4}}) {
        std::vector<double> in(n * stride + 1);
        for (double& v : in) v = d(rng);
        in.back() = 1e9;  // canary past the last point
        std::vector<double> want = in, got = in;
        Scalar().rigid_transform(rt, want.data(), stride, n, want.data(),
                                 stride);
        k->rigid_transform(rt, got.data(), stride, n, got.data(), stride);
        EXPECT_TRUE(BitEqual(got.data(), want.data(), in.size()))
            << TierName(k->tier) << " rigid in-place n=" << n
            << " stride=" << stride;

        // Strided gather into a packed xyz output (the ICP sampling shape).
        std::vector<double> out_w(n * 3 + 1, -7.0), out_g(n * 3 + 1, -7.0);
        Scalar().rigid_transform(rt, in.data(), stride, n, out_w.data(), 3);
        k->rigid_transform(rt, in.data(), stride, n, out_g.data(), 3);
        EXPECT_TRUE(BitEqual(out_g.data(), out_w.data(), out_w.size()))
            << TierName(k->tier) << " rigid packed n=" << n
            << " stride=" << stride;
      }
    }
  }
}

TEST(SimdSweep, SumStridedMatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed0009);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (const Kernels* k : CompiledTiers()) {
    for (std::size_t n = 0; n <= kMaxSweep; ++n) {
      const std::size_t stride = 5;
      std::vector<double> x(n * stride + 1);
      for (double& v : x) v = d(rng);
      const double want = Scalar().sum_strided(x.data(), stride, n);
      const double got = k->sum_strided(x.data(), stride, n);
      EXPECT_EQ(std::memcmp(&got, &want, 8), 0)
          << TierName(k->tier) << " sum_strided n=" << n;
    }
  }
}

TEST(SimdSweep, Crc32MatchesScalarAtEveryTail) {
  std::mt19937 rng(0x5eed000a);
  for (const Kernels* k : CompiledTiers()) {
    // Sweep lengths across the slice-by-8 block boundary and well past it.
    for (std::size_t n = 0; n <= 3 * 8 + 3; ++n) {
      std::vector<std::uint8_t> data(n);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());
      EXPECT_EQ(k->crc32(data.data(), n), Scalar().crc32(data.data(), n))
          << TierName(k->tier) << " crc32 n=" << n;
    }
    std::vector<std::uint8_t> big(4096);
    for (auto& b : big) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(k->crc32(big.data(), big.size()),
              Scalar().crc32(big.data(), big.size()))
        << TierName(k->tier) << " crc32 big";
  }
}

TEST(SimdSweep, Crc32KnownVector) {
  // CRC-32/IEEE of "123456789" is 0xcbf43926 — pins the polynomial and
  // reflection conventions across every tier.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  for (const Kernels* k : CompiledTiers()) {
    EXPECT_EQ(k->crc32(check, sizeof check), 0xcbf43926u) << TierName(k->tier);
  }
}

}  // namespace
}  // namespace cooper::common::simd
