#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace cooper {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = DataLossError("truncated header");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated header");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: truncated header");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreUnique) {
  std::set<std::string> names;
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kDataLoss,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  COOPER_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRangeError("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  COOPER_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(DoubleIt(21).ok());
  EXPECT_EQ(*DoubleIt(21), 42);
  EXPECT_EQ(DoubleIt(0).status().code(), StatusCode::kOutOfRange);
}

// --- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(10), 10u);
}

TEST(RngTest, ForkedStreamIsIndependent) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The fork and the parent's continued stream should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

// --- Table ---

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long-header"});
  t.AddRow({"x", "1"});
  t.AddRow({"yyyy", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| yyyy | 2           |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(FormatTest, FormatFixedDigits) {
  EXPECT_EQ(FormatFixed(0.756, 2), "0.76");
  EXPECT_EQ(FormatFixed(3.0, 1), "3.0");
  EXPECT_EQ(FormatFixed(-1.25, 2), "-1.25");
}

TEST(FormatTest, ScoreCellGrammar) {
  EXPECT_EQ(FormatScoreCell(0.76, true, 0.5), "0.76");
  EXPECT_EQ(FormatScoreCell(0.40, true, 0.5), "X");   // missed detection
  EXPECT_EQ(FormatScoreCell(0.90, false, 0.5), "");   // out of detection area
}

// --- Logging ---

TEST(LoggingTest, LevelFiltering) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  COOPER_LOG(Info) << "should be suppressed";
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesInExpressionContexts) {
  if (GetLogLevel() == LogLevel::kDebug)
    COOPER_LOG(Info) << "branch body without braces";
  else
    COOPER_LOG(Debug) << "else branch";
  SUCCEED();
}

}  // namespace
}  // namespace cooper
