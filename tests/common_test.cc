#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace cooper {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = DataLossError("truncated header");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated header");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: truncated header");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreUnique) {
  std::set<std::string> names;
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kDataLoss,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  COOPER_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRangeError("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  COOPER_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(DoubleIt(21).ok());
  EXPECT_EQ(*DoubleIt(21), 42);
  EXPECT_EQ(DoubleIt(0).status().code(), StatusCode::kOutOfRange);
}

// --- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(10), 10u);
}

TEST(RngTest, ForkedStreamIsIndependent) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The fork and the parent's continued stream should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

// --- Table ---

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long-header"});
  t.AddRow({"x", "1"});
  t.AddRow({"yyyy", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| yyyy | 2           |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(FormatTest, FormatFixedDigits) {
  EXPECT_EQ(FormatFixed(0.756, 2), "0.76");
  EXPECT_EQ(FormatFixed(3.0, 1), "3.0");
  EXPECT_EQ(FormatFixed(-1.25, 2), "-1.25");
}

TEST(FormatTest, ScoreCellGrammar) {
  EXPECT_EQ(FormatScoreCell(0.76, true, 0.5), "0.76");
  EXPECT_EQ(FormatScoreCell(0.40, true, 0.5), "X");   // missed detection
  EXPECT_EQ(FormatScoreCell(0.90, false, 0.5), "");   // out of detection area
}

// --- ThreadPool / ParallelFor ---

TEST(ThreadPoolTest, CoversEveryElementExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(1000);
    common::ParallelFor(threads, 0, visits.size(), 7,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) ++visits[i];
                        });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  common::ParallelFor(4, 5, 5, 8,
                      [&](std::size_t, std::size_t) { ++calls; });
  common::ParallelFor(4, 9, 3, 8,
                      [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  common::ParallelFor(8, 2, 12, 100, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2u);
  EXPECT_EQ(chunks[0].second, 12u);
}

TEST(ThreadPoolTest, ChunkDecompositionIndependentOfThreadCount) {
  // The determinism contract: chunk boundaries depend only on range and
  // grain, so per-chunk results merged in chunk order are identical at any
  // thread count.
  auto boundaries = [](int threads) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    common::ParallelFor(threads, 3, 500, 13,
                        [&](std::size_t lo, std::size_t hi) {
                          std::lock_guard<std::mutex> lock(mu);
                          chunks.emplace_back(lo, hi);
                        });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(boundaries(2), serial);
  EXPECT_EQ(boundaries(8), serial);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        common::ParallelFor(threads, 0, 100, 5,
                            [&](std::size_t lo, std::size_t) {
                              if (lo >= 50) throw std::runtime_error("boom");
                            }),
        std::runtime_error)
        << "threads " << threads;
  }
  // The pool survives a failed call and keeps working.
  std::atomic<int> sum{0};
  common::ParallelFor(4, 0, 10, 1,
                      [&](std::size_t lo, std::size_t) { sum += static_cast<int>(lo); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a chunk must not deadlock the pool.
  std::atomic<int> inner_total{0};
  common::ParallelFor(4, 0, 8, 1, [&](std::size_t, std::size_t) {
    common::ParallelFor(4, 0, 4, 1, [&](std::size_t, std::size_t) {
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, OwnedPoolUsesRealWorkers) {
  // A pool built with 4 keeps 3 workers regardless of host core count, so
  // this exercises genuine cross-thread chunk claiming even on one core.
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> visits(257);
  pool.ParallelFor(0, visits.size(), 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  // Exception from a worker-executed chunk reaches the caller, and the pool
  // stays usable afterwards.
  EXPECT_THROW(pool.ParallelFor(0, 64, 1,
                                [](std::size_t, std::size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 64, 1, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ResolveThreadsSemantics) {
  EXPECT_GE(common::ResolveThreads(0), 1);
  EXPECT_GE(common::ResolveThreads(-3), 1);
  EXPECT_EQ(common::ResolveThreads(1), 1);
  EXPECT_EQ(common::ResolveThreads(6), 6);
}

// --- StageTimer ---

TEST(StageTimerTest, LapsAccumulateInFirstRecordedOrder) {
  common::StageTimer timer;
  timer.Lap("a");
  timer.Lap("b");
  timer.Lap("a");
  ASSERT_EQ(timer.laps().size(), 2u);
  EXPECT_EQ(timer.laps()[0].first, "a");
  EXPECT_EQ(timer.laps()[1].first, "b");
  EXPECT_GE(timer.Us("a"), 0.0);
  EXPECT_EQ(timer.Us("missing"), 0.0);
  EXPECT_NEAR(timer.TotalUs(), timer.Us("a") + timer.Us("b"), 1e-9);
  EXPECT_NE(timer.Summary().find("a "), std::string::npos);
}

TEST(StageTimerTest, ResetClears) {
  common::StageTimer timer;
  timer.Lap("x");
  timer.Reset();
  EXPECT_TRUE(timer.laps().empty());
  EXPECT_EQ(timer.TotalUs(), 0.0);
}

// --- Logging ---

TEST(LoggingTest, LevelFiltering) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  COOPER_LOG(Info) << "should be suppressed";
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesInExpressionContexts) {
  if (GetLogLevel() == LogLevel::kDebug)
    COOPER_LOG(Info) << "branch body without braces";
  else
    COOPER_LOG(Debug) << "else branch";
  SUCCEED();
}

}  // namespace
}  // namespace cooper
