#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/dsrc.h"
#include "net/serialize.h"

namespace cooper::net {
namespace {

core::ExchangePackage MakeTestPackage(std::size_t payload_size = 64) {
  core::ExchangePackage p;
  p.sender_id = 7;
  p.timestamp_s = 12.5;
  p.roi = core::RoiCategory::kFrontSector;
  p.nav.gps_position = {1.5, -2.5, 0.25};
  p.nav.imu_attitude = {0.1, -0.05, 0.025};
  p.nav.lidar_mount = {0, 0, 1.73};
  p.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    p.payload[i] = static_cast<std::uint8_t>(i * 37);
  }
  return p;
}

// --- CRC ---

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(Crc32Test, SensitiveToSingleBit) {
  std::vector<std::uint8_t> a{1, 2, 3, 4};
  std::vector<std::uint8_t> b{1, 2, 3, 5};
  EXPECT_NE(Crc32(a.data(), a.size()), Crc32(b.data(), b.size()));
}

// --- Serialization ---

TEST(SerializeTest, RoundTripPreservesEverything) {
  const auto p = MakeTestPackage(333);
  const auto back = DeserializePackage(SerializePackage(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sender_id, 7u);
  EXPECT_DOUBLE_EQ(back->timestamp_s, 12.5);
  EXPECT_EQ(back->roi, core::RoiCategory::kFrontSector);
  EXPECT_DOUBLE_EQ(back->nav.gps_position.y, -2.5);
  EXPECT_DOUBLE_EQ(back->nav.imu_attitude.yaw, 0.1);
  EXPECT_DOUBLE_EQ(back->nav.lidar_mount.z, 1.73);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(SerializeTest, WireOverheadMatchesEmptyPayload) {
  auto p = MakeTestPackage(0);
  EXPECT_EQ(SerializePackage(p).size(), WireOverheadBytes());
}

TEST(SerializeTest, BadMagicRejected) {
  auto bytes = SerializePackage(MakeTestPackage());
  bytes[0] ^= 0xff;
  EXPECT_EQ(DeserializePackage(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, WrongVersionRejected) {
  auto bytes = SerializePackage(MakeTestPackage());
  bytes[4] = 99;  // version lives right after the magic
  const auto r = DeserializePackage(bytes);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, CorruptPayloadFailsCrc) {
  auto bytes = SerializePackage(MakeTestPackage(128));
  bytes[bytes.size() - 10] ^= 0x01;  // flip a payload bit
  const auto r = DeserializePackage(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos);
}

TEST(SerializeTest, CorruptNavFieldFailsCrc) {
  auto bytes = SerializePackage(MakeTestPackage());
  bytes[20] ^= 0x80;  // somewhere in the nav block
  EXPECT_FALSE(DeserializePackage(bytes).ok());
}

TEST(SerializeTest, BadRoiCategoryRejected) {
  auto p = MakeTestPackage();
  auto bytes = SerializePackage(p);
  // roi byte offset: magic(4) + version(2) + sender(4) + timestamp(8) = 18.
  bytes[18] = 9;
  const auto r = DeserializePackage(bytes);
  ASSERT_FALSE(r.ok());  // either bad ROI or CRC mismatch — both rejected
}

class TruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationTest, EveryPrefixFailsCleanly) {
  const auto bytes = SerializePackage(MakeTestPackage(64));
  const std::size_t cut = bytes.size() * static_cast<std::size_t>(GetParam()) / 10;
  const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
  EXPECT_FALSE(DeserializePackage(prefix).ok());
}

INSTANTIATE_TEST_SUITE_P(Prefixes, TruncationTest, ::testing::Range(0, 10));

TEST(SerializeTest, PayloadSizeLieRejected) {
  auto bytes = SerializePackage(MakeTestPackage(64));
  // Payload-size field precedes the payload; inflate it so the payload read
  // runs past the buffer.
  const std::size_t size_off = WireOverheadBytes() - 8;  // before payload+crc
  bytes[size_off] = 0xff;
  bytes[size_off + 1] = 0xff;
  EXPECT_FALSE(DeserializePackage(bytes).ok());
}

// Rewrites a v2 image as its v1 equivalent: drop the level byte (offset 19,
// after magic+version+sender+timestamp+roi), stamp version 1, re-seal.
std::vector<std::uint8_t> AsV1Wire(std::vector<std::uint8_t> bytes) {
  bytes.erase(bytes.begin() + 19);
  bytes[4] = 1;
  bytes[5] = 0;
  bytes.resize(bytes.size() - 4);  // old CRC
  const std::uint32_t crc = Crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return bytes;
}

TEST(SerializeTest, V1PackagesStillParseAsRoiCloud) {
  auto p = MakeTestPackage(96);
  p.level = feat::ExchangeLevel::kRawCloud;  // must NOT survive the downgrade
  const auto v1 = AsV1Wire(SerializePackage(p));
  EXPECT_EQ(v1.size(), SerializePackage(p).size() - 1);
  const auto back = DeserializePackage(v1);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // v1 predates the level byte: everything it carried was an ROI cloud.
  EXPECT_EQ(back->level, feat::ExchangeLevel::kRoiCloud);
  EXPECT_EQ(back->sender_id, 7u);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(SerializeTest, UnknownLevelRejectedAfterCrc) {
  auto bytes = SerializePackage(MakeTestPackage(32));
  bytes[19] = 7;  // no such rung on the ladder
  bytes.resize(bytes.size() - 4);
  const std::uint32_t crc = Crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  const auto r = DeserializePackage(bytes);
  ASSERT_FALSE(r.ok());
  // OUT_OF_RANGE, not DATA_LOSS: the CRC proved the bytes intact, so this is
  // a version-skew signal (a newer sender), not corruption.
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, LevelRoundTripsAllRungs) {
  for (const auto level :
       {feat::ExchangeLevel::kRawCloud, feat::ExchangeLevel::kRoiCloud,
        feat::ExchangeLevel::kVoxelFeatures}) {
    auto p = MakeTestPackage(16);
    p.level = level;
    const auto back = DeserializePackage(SerializePackage(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->level, level);
  }
}

// --- DSRC ---

TEST(DsrcTest, LatencyScalesWithSize) {
  const DsrcChannel ch(DsrcConfig{6.0, 2.0, 0.0, 1.0});
  // 6 Mbit payload at 6 Mbps = 1000 ms + 2 ms access.
  EXPECT_NEAR(ch.LatencyMs(750000), 1002.0, 1e-6);
  EXPECT_NEAR(ch.LatencyMs(0), 2.0, 1e-9);
}

TEST(DsrcTest, EffectiveThroughputHaircut) {
  const DsrcChannel ch(DsrcConfig{27.0, 2.0, 0.0, 0.9});
  EXPECT_NEAR(ch.EffectiveMbps(), 24.3, 1e-9);
}

TEST(DsrcTest, LosslessChannelDeliversEverything) {
  DsrcChannel ch(DsrcConfig{6.0, 2.0, 0.0, 0.9});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ch.Transmit(1000, rng).delivered);
  }
  EXPECT_EQ(ch.total_messages(), 100u);
  EXPECT_EQ(ch.total_dropped(), 0u);
  // With no losses, airtime and goodput agree.
  EXPECT_EQ(ch.total_bytes_on_air(), 100000u);
  EXPECT_EQ(ch.total_bytes_delivered(), 100000u);
}

TEST(DsrcTest, LossyChannelDropsExpectedFraction) {
  DsrcChannel ch(DsrcConfig{6.0, 2.0, 0.25, 0.9});
  Rng rng(2);
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) ch.Transmit(100, rng);
  EXPECT_NEAR(static_cast<double>(ch.total_dropped()) / kN, 0.25, 0.02);
  // Dropped frames burn airtime but contribute nothing to goodput — the two
  // counters must diverge by exactly the dropped bytes.
  EXPECT_EQ(ch.total_bytes_on_air(), kN * 100u);
  EXPECT_EQ(ch.total_bytes_delivered(), (kN - ch.total_dropped()) * 100u);
  EXPECT_EQ(ch.total_bytes_on_air() - ch.total_bytes_delivered(),
            ch.total_dropped() * 100u);
}

TEST(DsrcTest, DroppedMessageHasNoLatency) {
  DsrcChannel ch(DsrcConfig{6.0, 2.0, 1.0, 0.9});  // always drop
  Rng rng(3);
  const auto report = ch.Transmit(1000, rng);
  EXPECT_FALSE(report.delivered);
  EXPECT_DOUBLE_EQ(report.latency_ms, 0.0);
}

TEST(DsrcTest, SharedChannelCountersConsistentUnderConcurrentSenders) {
  // One channel as the edge node's shared airtime budget: several sender
  // threads (each with its own Rng, as the Transport contract requires)
  // transmit concurrently, and afterwards the counters must balance exactly —
  // no lost updates, airtime = goodput + dropped bytes.
  DsrcChannel ch(DsrcConfig{27.0, 2.0, 0.25, 0.9});
  constexpr int kSenders = 4;
  constexpr int kPerSender = 5000;
  constexpr std::size_t kBytes = 100;
  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&ch, s] {
      Rng rng(static_cast<std::uint64_t>(1000 + s));
      for (int i = 0; i < kPerSender; ++i) ch.Transmit(kBytes, rng);
    });
  }
  for (auto& t : senders) t.join();

  const std::size_t total = kSenders * kPerSender;
  EXPECT_EQ(ch.total_messages(), total);
  EXPECT_EQ(ch.total_bytes_on_air(), total * kBytes);
  EXPECT_EQ(ch.total_bytes_delivered(),
            (total - ch.total_dropped()) * kBytes);
  EXPECT_GT(ch.total_dropped(), 0u);
  EXPECT_LT(ch.total_dropped(), total);
}

TEST(DsrcTest, CopyingChannelSnapshotsCounters) {
  DsrcChannel ch(DsrcConfig{6.0, 2.0, 0.0, 0.9});
  Rng rng(9);
  ch.Transmit(500, rng);
  const DsrcChannel copy(ch);
  EXPECT_EQ(copy.total_messages(), 1u);
  EXPECT_EQ(copy.total_bytes_on_air(), 500u);
  ch.Transmit(500, rng);
  // Copies diverge after the snapshot; the original keeps accumulating.
  EXPECT_EQ(copy.total_messages(), 1u);
  EXPECT_EQ(ch.total_messages(), 2u);
}

// --- Traffic accounting ---

TEST(TrafficTest, PerSecondBucketsAtOneHz) {
  // 1 Hz: one frame per second, one bucket each.
  const std::vector<std::size_t> frames{125000, 250000, 125000};  // bytes
  const auto vol = PerSecondVolumeMbit(frames, 1.0);
  ASSERT_EQ(vol.size(), 3u);
  EXPECT_NEAR(vol[0], 1.0, 1e-9);
  EXPECT_NEAR(vol[1], 2.0, 1e-9);
}

TEST(TrafficTest, PerSecondBucketsAtTenHz) {
  const std::vector<std::size_t> frames(20, 12500);  // 0.1 Mbit each, 10 Hz
  const auto vol = PerSecondVolumeMbit(frames, 10.0);
  ASSERT_EQ(vol.size(), 2u);
  EXPECT_NEAR(vol[0], 1.0, 1e-9);
  EXPECT_NEAR(vol[1], 1.0, 1e-9);
}

TEST(TrafficTest, EmptyInput) {
  EXPECT_TRUE(PerSecondVolumeMbit({}, 1.0).empty());
  EXPECT_TRUE(PerSecondVolumeMbit({100}, 0.0).empty());
}

}  // namespace
}  // namespace cooper::net
