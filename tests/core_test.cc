#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/cooper.h"
#include "core/exchange.h"
#include "core/roi.h"
#include "eval/experiment.h"
#include "sim/lidar.h"
#include "sim/scene.h"

namespace cooper::core {
namespace {

// --- Exchange packages ---

TEST(ExchangeTest, BuildAndUnpackRoundTrip) {
  pc::PointCloud cloud;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    cloud.Add({rng.Uniform(-30, 30), rng.Uniform(-30, 30), rng.Uniform(-2, 2)},
              static_cast<float>(rng.Uniform()));
  }
  const NavMetadata nav{{1, 2, 0}, {0.5, 0, 0}, {0, 0, 1.9}};
  const pc::CloudCodec codec;
  const auto package = BuildPackage(9, 3.25, RoiCategory::kFullFrame, nav,
                                    cloud, codec);
  EXPECT_EQ(package.sender_id, 9u);
  EXPECT_GT(package.PayloadBytes(), 0u);
  EXPECT_NEAR(package.PayloadMbit(),
              package.PayloadBytes() * 8.0 / 1e6, 1e-12);

  const auto back = DecodePackage(package);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_NEAR(back.value()[i].position.x, cloud[i].position.x, 0.006);
  }
}

TEST(ExchangeTest, CorruptPayloadFailsUnpack) {
  ExchangePackage p;
  p.payload = {1, 2, 3, 4, 5};
  EXPECT_FALSE(DecodePackage(p).ok());
}

TEST(ExchangeTest, SensorPoseIncludesMount) {
  NavMetadata nav{{10, 0, 0}, {0, 0, 0}, {0, 0, 1.73}};
  const geom::Vec3 origin = nav.SensorPose() * geom::Vec3{0, 0, 0};
  EXPECT_NEAR(origin.x, 10.0, 1e-12);
  EXPECT_NEAR(origin.z, 1.73, 1e-12);
}

TEST(ExchangeTest, RoiCategoryNames) {
  EXPECT_NE(std::string(RoiCategoryName(RoiCategory::kFullFrame)).find("full"),
            std::string::npos);
  EXPECT_NE(std::string(RoiCategoryName(RoiCategory::kFrontSector)).find("120"),
            std::string::npos);
}

// --- ROI extraction ---

pc::PointCloud MakeRoiTestCloud() {
  pc::PointCloud cloud;
  // Ground carpet (establishes the ground estimate).
  for (int i = 0; i < 200; ++i) {
    cloud.Add({0.5 * (i % 20) + 1.0, 0.5 * (i / 20) - 2.5, -1.9f}, 0.2f);
  }
  cloud.Add({10, 0, -1.0}, 0.5f);    // front, foreground
  cloud.Add({-10, 0, -1.0}, 0.5f);   // rear, foreground
  cloud.Add({0, 10, -1.0}, 0.5f);    // left (90 deg)
  cloud.Add({10, 0, 6.0}, 0.5f);     // front, high background (building)
  cloud.Add({80, 0, -1.0}, 0.5f);    // front, beyond share range
  return cloud;
}

TEST(RoiTest, FullFrameIsUnfiltered) {
  const auto cloud = MakeRoiTestCloud();
  EXPECT_EQ(ExtractRoi(cloud, RoiCategory::kFullFrame).size(), cloud.size());
}

TEST(RoiTest, BackgroundSubtractionRemovesHighAndFar) {
  const auto cloud = MakeRoiTestCloud();
  const auto fg = SubtractBackground(cloud);
  // Building point (z 6.0 above ground) and 80 m point removed.
  EXPECT_EQ(fg.size(), cloud.size() - 2);
}

TEST(RoiTest, FrontSectorKeepsOnly120Degrees) {
  const auto cloud = MakeRoiTestCloud();
  const auto roi = ExtractRoi(cloud, RoiCategory::kFrontSector);
  bool has_front = false;
  for (const auto& p : roi) {
    const double az = std::abs(std::atan2(p.position.y, p.position.x));
    EXPECT_LE(az, geom::DegToRad(60.0) + 1e-9);
    if (p.position.x > 9.0 && std::abs(p.position.y) < 0.5) has_front = true;
  }
  EXPECT_TRUE(has_front);
}

TEST(RoiTest, ForwardLeadIsNarrower) {
  const auto cloud = MakeRoiTestCloud();
  EXPECT_LE(ExtractRoi(cloud, RoiCategory::kForwardLead).size(),
            ExtractRoi(cloud, RoiCategory::kFrontSector).size());
}

TEST(RoiTest, RoiOrderingMatchesFig12) {
  // Data volume ordering: full frame >= front sector >= forward lead.
  const auto cloud = MakeRoiTestCloud();
  const auto full = ExtractRoi(cloud, RoiCategory::kFullFrame).size();
  const auto front = ExtractRoi(cloud, RoiCategory::kFrontSector).size();
  const auto lead = ExtractRoi(cloud, RoiCategory::kForwardLead).size();
  EXPECT_GE(full, front);
  EXPECT_GE(front, lead);
}

// --- Cooper pipeline ---

struct TwoVehicleSetup {
  CooperConfig config;
  pc::PointCloud cloud_a, cloud_b;
  NavMetadata nav_a, nav_b;
  geom::Pose pose_a, pose_b;  // true vehicle poses
};

TwoVehicleSetup MakeSetup() {
  TwoVehicleSetup s;
  sim::Scene scene;
  // Truck occludes one car from A; B sees behind it.
  scene.AddObject(sim::ObjectClass::kTruck, sim::MakeTruckBox({14, 3.5, 0}, 0.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({22, 3.8, 0}, 0.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({11, -3.5, 0}, 180.0), 0.6);

  sim::LidarConfig lidar = sim::Hdl64Config();
  lidar.azimuth_steps = 720;
  s.config = eval::MakeCooperConfig(lidar);

  s.pose_a = geom::Pose::FromGpsImu({0, 0, 0}, {0, 0, 0});
  s.pose_b = geom::Pose::FromGpsImu({33, -3.0, 0}, {geom::DegToRad(180), 0, 0});
  Rng rng(3);
  const sim::LidarSimulator sim_lidar(lidar);
  s.cloud_a = sim_lidar.Scan(scene, s.pose_a, rng);
  s.cloud_b = sim_lidar.Scan(scene, s.pose_b, rng);
  const geom::Vec3 mount{0, 0, lidar.sensor_height};
  s.nav_a = NavMetadata{{0, 0, 0}, {0, 0, 0}, mount};
  s.nav_b = NavMetadata{{33, -3.0, 0}, {geom::DegToRad(180), 0, 0}, mount};
  return s;
}

TEST(CooperPipelineTest, ReconstructAlignsRemotePoints) {
  const auto s = MakeSetup();
  const CooperPipeline pipeline(s.config);
  const auto package = pipeline.MakePackage(2, 0.0, RoiCategory::kFullFrame,
                                            s.nav_b, s.cloud_b);
  const auto remote = pipeline.ReconstructRemoteCloud(s.nav_a, package);
  ASSERT_TRUE(remote.ok());
  // The occluded car at (22, 3.8) world is visible to B; after
  // reconstruction its points must appear near (22, 3.8) in A's frame
  // (A sits at the world origin, sensor at mount height).
  geom::Box3 car = sim::MakeCarBox({22, 3.8, 0}, 0.0).Expanded(0.3);
  car.center.z -= s.config.detector.voxel.min_bound.z * 0 +
                  1.73;  // sensor-frame z (HDL-64 mount height)
  EXPECT_GT(remote->CountInBox(car), 30u);
}

TEST(CooperPipelineTest, CooperativeDetectsOccludedCar) {
  const auto s = MakeSetup();
  const CooperPipeline pipeline(s.config);

  const auto single = pipeline.DetectSingleShot(s.cloud_a);
  const auto package = pipeline.MakePackage(2, 0.0, RoiCategory::kFullFrame,
                                            s.nav_b, s.cloud_b);
  const auto coop = pipeline.DetectCooperative(s.cloud_a, s.nav_a, package);
  ASSERT_TRUE(coop.ok());
  EXPECT_GT(coop->transmitter_points, 1000u);
  EXPECT_EQ(coop->fused_cloud.size(),
            s.cloud_a.size() + coop->transmitter_points);

  auto finds_occluded = [&](const std::vector<spod::Detection>& dets) {
    for (const auto& d : dets) {
      if (d.score >= 0.5 && std::abs(d.box.center.x - 22.0) < 2.0 &&
          std::abs(d.box.center.y - 3.8) < 2.0) {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(finds_occluded(single.detections));
  EXPECT_TRUE(finds_occluded(coop->fused.detections));
}

TEST(CooperPipelineTest, CorruptPackageReturnsError) {
  const auto s = MakeSetup();
  const CooperPipeline pipeline(s.config);
  ExchangePackage bad;
  bad.payload = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE(pipeline.DetectCooperative(s.cloud_a, s.nav_a, bad).ok());
}

TEST(CooperPipelineTest, RoiPackageShrinksPayload) {
  const auto s = MakeSetup();
  const CooperPipeline pipeline(s.config);
  const auto full = pipeline.MakePackage(2, 0.0, RoiCategory::kFullFrame,
                                         s.nav_b, s.cloud_b);
  const auto sector = pipeline.MakePackage(2, 0.0, RoiCategory::kFrontSector,
                                           s.nav_b, s.cloud_b);
  EXPECT_LT(sector.PayloadBytes(), full.PayloadBytes());
}

TEST(CooperPipelineTest, FullFramePayloadNearPaperBudget) {
  // §II-C: "point clouds can be compressed into 200 KB per scan" — our
  // codec on a full 64-beam scan should be the same order of magnitude.
  const auto s = MakeSetup();
  const CooperPipeline pipeline(s.config);
  const auto package = pipeline.MakePackage(2, 0.0, RoiCategory::kFullFrame,
                                            s.nav_b, s.cloud_b);
  EXPECT_LT(package.PayloadBytes(), 500u * 1024u);
  EXPECT_GT(package.PayloadBytes(), 20u * 1024u);
}

}  // namespace
}  // namespace cooper::core
