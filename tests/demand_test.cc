#include <gtest/gtest.h>

#include "core/demand.h"
#include "sim/camera.h"
#include "sim/scene.h"

namespace cooper::core {
namespace {

// --- Camera substrate ---

TEST(CameraTest, RenderSeesObjectAndGround) {
  sim::Scene scene;
  const int car_id =
      scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({8, 0, 0}, 90.0), 0.6);
  const auto camera = sim::PinholeCamera::FrontCamera();
  const auto image = camera.Render(scene, geom::Pose::Identity());
  EXPECT_GT(image.CountObjectPixels(car_id), 200u);
  EXPECT_GT(image.CountObjectPixels(-1), 500u);   // ground below the horizon
  EXPECT_GT(image.CountObjectPixels(-2), 500u);   // sky above it
}

TEST(CameraTest, NearerObjectOccludes) {
  sim::Scene scene;
  const int near_id =
      scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({8, 0, 0}, 90.0), 0.6);
  const int far_id =
      scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({14, 0, 0}, 90.0), 0.6);
  const auto camera = sim::PinholeCamera::FrontCamera();
  const auto image = camera.Render(scene, geom::Pose::Identity());
  EXPECT_GT(image.CountObjectPixels(near_id), 3 * image.CountObjectPixels(far_id));
}

TEST(CameraTest, DepthIncreasesWithDistance) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({10, 0, 0}, 90.0), 0.6);
  const auto camera = sim::PinholeCamera::FrontCamera();
  const auto image = camera.Render(scene, geom::Pose::Identity());
  const auto& center = image.At(camera.intrinsics().width / 2,
                                camera.intrinsics().height / 2);
  ASSERT_GE(center.object_id, 0);
  EXPECT_NEAR(center.depth, 7.0, 1.5);  // nose of the car ~ 10 - 0.9 - mount 1.2
}

TEST(CameraTest, ProjectBoxBoundsObjectPixels) {
  sim::Scene scene;
  const auto box = sim::MakeCarBox({9, 1, 0}, 45.0);
  const int id = scene.AddObject(sim::ObjectClass::kCar, box, 0.6);
  const auto camera = sim::PinholeCamera::FrontCamera();
  const auto image = camera.Render(scene, geom::Pose::Identity());
  int x0, y0, x1, y1;
  ASSERT_TRUE(camera.ProjectBox(box, geom::Pose::Identity(), &x0, &y0, &x1, &y1));
  // Every car pixel falls inside the projected rectangle.
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      if (image.At(x, y).object_id == id) {
        EXPECT_GE(x, x0);
        EXPECT_LE(x, x1);
        EXPECT_GE(y, y0);
        EXPECT_LE(y, y1);
      }
    }
  }
}

TEST(CameraTest, BoxBehindCameraRejected) {
  const auto camera = sim::PinholeCamera::FrontCamera();
  int x0, y0, x1, y1;
  EXPECT_FALSE(camera.ProjectBox(sim::MakeCarBox({-15, 0, 0}, 0.0),
                                 geom::Pose::Identity(), &x0, &y0, &x1, &y1));
}

// --- Demand-driven fragments ---

struct DemandFixture {
  sim::Scene scene;
  int car_id = 0;
  geom::Box3 car_box;
  sim::PinholeCamera camera = sim::PinholeCamera::FrontCamera();
  sim::CameraImage image{1, 1};
  geom::Pose vehicle_pose = geom::Pose::Identity();

  DemandFixture() {
    car_box = sim::MakeCarBox({9, -1, 0}, 80.0);
    car_id = scene.AddObject(sim::ObjectClass::kCar, car_box, 0.6);
    image = camera.Render(scene, vehicle_pose);
  }
};

TEST(DemandTest, FragmentCoversRequestedObject) {
  DemandFixture fx;
  FragmentRequest request{1, 42, fx.car_box};
  const auto fragment = ServeFragmentRequest(request, 7, fx.image, fx.camera,
                                             fx.vehicle_pose);
  ASSERT_TRUE(fragment.ok());
  EXPECT_EQ(fragment->request_id, 42u);
  EXPECT_EQ(fragment->sender_id, 7u);
  // The crop contains the car's pixels.
  std::size_t car_pixels = 0;
  for (const auto& px : fragment->pixels) car_pixels += px.object_id == fx.car_id;
  EXPECT_GT(car_pixels, 100u);
  // And is a small fraction of the full frame (the point of demand-driven).
  EXPECT_LT(fragment->pixels.size(),
            static_cast<std::size_t>(fx.image.width()) * fx.image.height());
}

TEST(DemandTest, OutOfViewRegionIsNotFound) {
  DemandFixture fx;
  FragmentRequest request{1, 1, sim::MakeCarBox({-20, 0, 0}, 0.0)};
  EXPECT_EQ(ServeFragmentRequest(request, 7, fx.image, fx.camera,
                                 fx.vehicle_pose)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(DemandTest, FragmentWireRoundTrip) {
  DemandFixture fx;
  FragmentRequest request{1, 9, fx.car_box};
  const auto fragment = ServeFragmentRequest(request, 7, fx.image, fx.camera,
                                             fx.vehicle_pose);
  ASSERT_TRUE(fragment.ok());
  const auto bytes = SerializeFragment(*fragment);
  const auto back = DeserializeFragment(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width, fragment->width);
  EXPECT_EQ(back->height, fragment->height);
  ASSERT_EQ(back->pixels.size(), fragment->pixels.size());
  for (std::size_t i = 0; i < back->pixels.size(); ++i) {
    EXPECT_EQ(back->pixels[i].object_id, fragment->pixels[i].object_id);
    EXPECT_FLOAT_EQ(back->pixels[i].depth, fragment->pixels[i].depth);
    EXPECT_EQ(back->pixels[i].shade, fragment->pixels[i].shade);
  }
}

TEST(DemandTest, TruncatedFragmentRejected) {
  DemandFixture fx;
  FragmentRequest request{1, 9, fx.car_box};
  const auto fragment = ServeFragmentRequest(request, 7, fx.image, fx.camera,
                                             fx.vehicle_pose);
  ASSERT_TRUE(fragment.ok());
  auto bytes = SerializeFragment(*fragment);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeFragment(bytes).ok());
}

TEST(DemandTest, ImplausibleExtentRejected) {
  std::vector<std::uint8_t> bytes(24, 0);
  // width = 0 in the header.
  EXPECT_FALSE(DeserializeFragment(bytes).ok());
}

TEST(DemandTest, FragmentIsCheaperThanCloud) {
  // The rationale of §II-C: a plate-sized image fragment costs a few KB,
  // orders of magnitude below a point-cloud frame (~hundreds of KB).
  DemandFixture fx;
  // Request just the front of the car (plate-sized region).
  geom::Box3 plate = fx.car_box;
  plate.length = 0.6;
  plate.height = 0.3;
  plate.center.z = 0.5;
  FragmentRequest request{1, 5, plate};
  const auto fragment = ServeFragmentRequest(request, 7, fx.image, fx.camera,
                                             fx.vehicle_pose);
  ASSERT_TRUE(fragment.ok());
  EXPECT_LT(fragment->SizeBytes(), 20u * 1024u);
}

}  // namespace
}  // namespace cooper::core
