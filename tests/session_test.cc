#include <gtest/gtest.h>

#include "core/session.h"
#include "eval/experiment.h"
#include "eval/matching.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

namespace cooper::core {
namespace {

CooperConfig TestConfig() {
  sim::LidarConfig lidar = sim::Vlp16Config();
  lidar.azimuth_steps = 900;
  return eval::MakeCooperConfig(lidar);
}

ExchangePackage TinyPackage(std::uint32_t sender, double timestamp) {
  pc::PointCloud cloud;
  cloud.Add({5, 0, 0}, 0.5f);
  cloud.Add({5.1, 0, 0.4}, 0.5f);
  const pc::CloudCodec codec;
  return BuildPackage(sender, timestamp, RoiCategory::kFullFrame,
                      NavMetadata{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}}, cloud,
                      codec);
}

TEST(SessionTest, AcceptsFreshPackages) {
  CooperativeSession session(TestConfig());
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.1).ok());
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.1).ok());
  EXPECT_EQ(session.num_cooperators(), 2u);
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(SessionTest, NewerFrameReplacesOlder) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 11.0), 11.0).ok());
  EXPECT_EQ(session.num_cooperators(), 1u);
  EXPECT_EQ(session.stats().packages_replaced, 1u);
}

TEST(SessionTest, RegressingTimestampRejected) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 11.0), 11.0).ok());
  const Status s = session.ReceivePackage(TinyPackage(1, 10.0), 11.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, StaleOnArrivalRejected) {
  CooperativeSession session(TestConfig());
  const Status s = session.ReceivePackage(TinyPackage(1, 10.0), 20.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.num_cooperators(), 0u);
}

TEST(SessionTest, DuplicateSenderEqualTimestampRejected) {
  // A replacement must be *strictly* newer: a resent copy of the same frame
  // (same sender, same timestamp) is rejected, not silently re-accepted.
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  const Status s = session.ReceivePackage(TinyPackage(1, 10.0), 10.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().packages_replaced, 0u);
  EXPECT_EQ(session.num_cooperators(), 1u);
}

TEST(SessionTest, CooperatorCapEnforced) {
  SessionConfig sc;
  sc.max_cooperators = 2;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  // The newcomer is no fresher than the stalest incumbent: rejected.
  EXPECT_EQ(session.ReceivePackage(TinyPackage(3, 10.0), 10.0).code(),
            StatusCode::kResourceExhausted);
  // Replacing a held sender still works at the cap.
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(2, 10.5), 10.5).ok());
}

TEST(SessionTest, CapEvictsStalestForFresherNewcomer) {
  SessionConfig sc;
  sc.max_cooperators = 2;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.8), 10.8).ok());
  // Sender 3 arrives fresher than the stalest incumbent (1 @ 10.0): 1 goes.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(3, 11.0), 11.0).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(session.stats().packages_evicted, 1u);
  // Next eviction takes the now-stalest (2 @ 10.8): order is by timestamp.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(4, 11.2), 11.2).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(session.stats().packages_evicted, 2u);
}

TEST(SessionTest, CapEvictionTieBreaksOnHighestSenderId) {
  SessionConfig sc;
  sc.max_cooperators = 3;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(5, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(3, 10.0), 10.0).ok());
  // All equally stale: the deterministic victim is the highest sender id.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(9, 10.4), 10.4).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{1, 3, 9}));
}

TEST(SessionTest, ExpiryBoundaryExactlyAtMaxAge) {
  SessionConfig sc;
  sc.max_package_age_s = 1.5;
  CooperativeSession session(TestConfig(), sc);
  // Exactly max_package_age_s old on arrival: still acceptable (the check is
  // strictly greater-than).
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 11.5).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  const NavMetadata nav{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}};
  // At now == timestamp + max_age the package survives the expiry sweep...
  session.DetectCooperative(local, nav, 11.5);
  EXPECT_EQ(session.num_cooperators(), 1u);
  EXPECT_EQ(session.stats().packages_expired, 0u);
  // ...and one tick past it, it ages out.
  session.DetectCooperative(local, nav, 11.5 + 1e-9);
  EXPECT_EQ(session.num_cooperators(), 0u);
  EXPECT_EQ(session.stats().packages_expired, 1u);
}

TEST(SessionTest, PackagesExpireOverTime) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 12.0), 12.0).ok());
  // At t = 13, sender 1's frame (age 3 s) is stale, sender 2's is fresh.
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  session.DetectCooperative(local, NavMetadata{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}},
                            13.0);
  EXPECT_EQ(session.num_cooperators(), 1u);
  EXPECT_EQ(session.stats().packages_expired, 1u);
}

TEST(SessionTest, MoreCooperatorsNeverDetectFewer) {
  // Three vehicles in the dense lot: each added cooperator's points can only
  // add evidence.
  const auto scenario = sim::MakeTjScenario(2);
  const auto cfg = eval::MakeCooperConfig(scenario.lidar);
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(5);

  std::vector<pc::PointCloud> clouds;
  std::vector<NavMetadata> navs;
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  for (const auto& vp : scenario.viewpoints) {
    clouds.push_back(lidar.Scan(scenario.scene, vp.ToPose(), rng));
    navs.push_back(NavMetadata{vp.position, vp.attitude, mount});
  }

  // GT boxes in viewpoint 0's sensor frame.
  const geom::Pose sensor0 =
      scenario.viewpoints[0].ToPose() * geom::Pose(geom::Mat3::Identity(), mount);
  std::vector<geom::Box3> gt;
  for (const auto& obj : scenario.scene.objects()) {
    if (obj.cls == sim::ObjectClass::kCar) {
      gt.push_back(obj.box.Transformed(sensor0.Inverse()));
    }
  }
  auto matched_count = [&](const spod::SpodResult& result) {
    std::vector<spod::Detection> confident;
    for (const auto& d : result.detections) {
      if (d.score >= eval::kScoreThreshold) confident.push_back(d);
    }
    int n = 0;
    for (const auto& m : eval::MatchDetections(confident, gt)) n += m.matched;
    return n;
  };

  CooperativeSession session(cfg);
  const int alone = matched_count(session.DetectSingleShot(clouds[0]));
  int prev = alone;
  for (std::size_t k = 1; k < scenario.viewpoints.size(); ++k) {
    ASSERT_TRUE(session
                    .ReceivePackage(session.pipeline().MakePackage(
                                        static_cast<std::uint32_t>(k), 0.0,
                                        RoiCategory::kFullFrame, navs[k],
                                        clouds[k]),
                                    0.0)
                    .ok());
    const int with_k = matched_count(
        session.DetectCooperative(clouds[0], navs[0], 0.0).fused);
    EXPECT_GE(with_k, prev - 1) << "cooperators: " << k;  // allow 1 flake
    prev = std::max(prev, with_k);
  }
  EXPECT_GT(prev, alone);
}

TEST(SessionTest, CorruptCooperatorSkippedNotFatal) {
  CooperativeSession session(TestConfig());
  ExchangePackage bad = TinyPackage(1, 10.0);
  bad.payload = {0xff, 0xee, 0xdd};
  ASSERT_TRUE(session.ReceivePackage(bad, 10.0).ok());  // accepted at face value
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  const auto out = session.DetectCooperative(
      local, NavMetadata{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}}, 10.0);
  // Only the healthy cooperator's 2 points arrive.
  EXPECT_EQ(out.transmitter_points, 2u);
}

}  // namespace
}  // namespace cooper::core
