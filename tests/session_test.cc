#include <gtest/gtest.h>

#include "core/session.h"
#include "eval/experiment.h"
#include "eval/matching.h"
#include "net/fault.h"
#include "net/serialize.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

namespace cooper::core {
namespace {

CooperConfig TestConfig() {
  sim::LidarConfig lidar = sim::Vlp16Config();
  lidar.azimuth_steps = 900;
  return eval::MakeCooperConfig(lidar);
}

ExchangePackage TinyPackage(std::uint32_t sender, double timestamp) {
  pc::PointCloud cloud;
  cloud.Add({5, 0, 0}, 0.5f);
  cloud.Add({5.1, 0, 0.4}, 0.5f);
  const pc::CloudCodec codec;
  return BuildPackage(sender, timestamp, RoiCategory::kFullFrame,
                      NavMetadata{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}}, cloud,
                      codec);
}

TEST(SessionTest, AcceptsFreshPackages) {
  CooperativeSession session(TestConfig());
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.1).ok());
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.1).ok());
  EXPECT_EQ(session.num_cooperators(), 2u);
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(SessionTest, NewerFrameReplacesOlder) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 11.0), 11.0).ok());
  EXPECT_EQ(session.num_cooperators(), 1u);
  EXPECT_EQ(session.stats().packages_replaced, 1u);
}

TEST(SessionTest, RegressingTimestampRejected) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 11.0), 11.0).ok());
  const Status s = session.ReceivePackage(TinyPackage(1, 10.0), 11.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, StaleOnArrivalRejected) {
  CooperativeSession session(TestConfig());
  const Status s = session.ReceivePackage(TinyPackage(1, 10.0), 20.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.num_cooperators(), 0u);
}

TEST(SessionTest, DuplicateSenderEqualTimestampRejected) {
  // A replacement must be *strictly* newer: a resent copy of the same frame
  // (same sender, same timestamp) is rejected, not silently re-accepted.
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  const Status s = session.ReceivePackage(TinyPackage(1, 10.0), 10.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().packages_replaced, 0u);
  EXPECT_EQ(session.num_cooperators(), 1u);
}

TEST(SessionTest, CooperatorCapEnforced) {
  SessionConfig sc;
  sc.max_cooperators = 2;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  // The newcomer is no fresher than the stalest incumbent: rejected.
  EXPECT_EQ(session.ReceivePackage(TinyPackage(3, 10.0), 10.0).code(),
            StatusCode::kResourceExhausted);
  // Replacing a held sender still works at the cap.
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(2, 10.5), 10.5).ok());
}

TEST(SessionTest, CapEvictsStalestForFresherNewcomer) {
  SessionConfig sc;
  sc.max_cooperators = 2;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.8), 10.8).ok());
  // Sender 3 arrives fresher than the stalest incumbent (1 @ 10.0): 1 goes.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(3, 11.0), 11.0).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(session.stats().packages_evicted, 1u);
  // Next eviction takes the now-stalest (2 @ 10.8): order is by timestamp.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(4, 11.2), 11.2).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(session.stats().packages_evicted, 2u);
}

TEST(SessionTest, CapEvictionTieBreaksOnHighestSenderId) {
  SessionConfig sc;
  sc.max_cooperators = 3;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(5, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(3, 10.0), 10.0).ok());
  // All equally stale: the deterministic victim is the highest sender id.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(9, 10.4), 10.4).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{1, 3, 9}));
}

TEST(SessionTest, ExpiryBoundaryExactlyAtMaxAge) {
  SessionConfig sc;
  sc.max_package_age_s = 1.5;
  CooperativeSession session(TestConfig(), sc);
  // Exactly max_package_age_s old on arrival: still acceptable (the check is
  // strictly greater-than).
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 11.5).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  const NavMetadata nav{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}};
  // At now == timestamp + max_age the package survives the expiry sweep...
  session.DetectCooperative(local, nav, 11.5);
  EXPECT_EQ(session.num_cooperators(), 1u);
  EXPECT_EQ(session.stats().packages_expired, 0u);
  // ...and one tick past it, it ages out.
  session.DetectCooperative(local, nav, 11.5 + 1e-9);
  EXPECT_EQ(session.num_cooperators(), 0u);
  EXPECT_EQ(session.stats().packages_expired, 1u);
}

TEST(SessionTest, PackagesExpireOverTime) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 12.0), 12.0).ok());
  // At t = 13, sender 1's frame (age 3 s) is stale, sender 2's is fresh.
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  session.DetectCooperative(local, NavMetadata{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}},
                            13.0);
  EXPECT_EQ(session.num_cooperators(), 1u);
  EXPECT_EQ(session.stats().packages_expired, 1u);
}

TEST(SessionTest, MoreCooperatorsNeverDetectFewer) {
  // Three vehicles in the dense lot: each added cooperator's points can only
  // add evidence.
  const auto scenario = sim::MakeTjScenario(2);
  const auto cfg = eval::MakeCooperConfig(scenario.lidar);
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(5);

  std::vector<pc::PointCloud> clouds;
  std::vector<NavMetadata> navs;
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  for (const auto& vp : scenario.viewpoints) {
    clouds.push_back(lidar.Scan(scenario.scene, vp.ToPose(), rng));
    navs.push_back(NavMetadata{vp.position, vp.attitude, mount});
  }

  // GT boxes in viewpoint 0's sensor frame.
  const geom::Pose sensor0 =
      scenario.viewpoints[0].ToPose() * geom::Pose(geom::Mat3::Identity(), mount);
  std::vector<geom::Box3> gt;
  for (const auto& obj : scenario.scene.objects()) {
    if (obj.cls == sim::ObjectClass::kCar) {
      gt.push_back(obj.box.Transformed(sensor0.Inverse()));
    }
  }
  auto matched_count = [&](const spod::SpodResult& result) {
    std::vector<spod::Detection> confident;
    for (const auto& d : result.detections) {
      if (d.score >= eval::kScoreThreshold) confident.push_back(d);
    }
    int n = 0;
    for (const auto& m : eval::MatchDetections(confident, gt)) n += m.matched;
    return n;
  };

  CooperativeSession session(cfg);
  const int alone = matched_count(session.DetectSingleShot(clouds[0]));
  int prev = alone;
  for (std::size_t k = 1; k < scenario.viewpoints.size(); ++k) {
    ASSERT_TRUE(session
                    .ReceivePackage(session.pipeline().MakePackage(
                                        static_cast<std::uint32_t>(k), 0.0,
                                        RoiCategory::kFullFrame, navs[k],
                                        clouds[k]),
                                    0.0)
                    .ok());
    const int with_k = matched_count(
        session.DetectCooperative(clouds[0], navs[0], 0.0).fused);
    EXPECT_GE(with_k, prev - 1) << "cooperators: " << k;  // allow 1 flake
    prev = std::max(prev, with_k);
  }
  EXPECT_GT(prev, alone);
}

TEST(SessionTest, FutureTimestampRejectedBeyondSkewGate) {
  // Regression: a future-dated package has negative age, so it used to pass
  // the staleness gate and — because the expiry sweep is age-based too —
  // was never removed, pinning a cooperator slot indefinitely.
  SessionConfig sc;
  sc.max_future_skew_s = 0.1;
  CooperativeSession session(TestConfig(), sc);
  const Status s = session.ReceivePackage(TinyPackage(1, 100.0), 10.0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.num_cooperators(), 0u);
  EXPECT_EQ(session.stats().packages_rejected_future, 1u);
  // Exactly at the skew bound the package is still acceptable (strict <).
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(2, 10.1), 10.0).ok());
  // Just past it, rejected.
  EXPECT_EQ(session.ReceivePackage(TinyPackage(3, 10.2 + 1e-9), 10.1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().packages_rejected_future, 2u);
}

TEST(SessionTest, StaleAndRegressionRejectionsCountedSeparately) {
  CooperativeSession session(TestConfig());
  // Stale on arrival: only the stale counter moves.
  ASSERT_EQ(session.ReceivePackage(TinyPackage(1, 10.0), 20.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().packages_rejected_stale, 1u);
  EXPECT_EQ(session.stats().packages_rejected_old, 0u);
  // Regression against a held frame: only the regression counter moves.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 20.0), 20.0).ok());
  ASSERT_EQ(session.ReceivePackage(TinyPackage(1, 19.5), 20.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().packages_rejected_stale, 1u);
  EXPECT_EQ(session.stats().packages_rejected_old, 1u);
}

TEST(SessionTest, StaleOnArrivalBoundaryExactlyAtMaxAge) {
  SessionConfig sc;
  sc.max_package_age_s = 1.5;
  CooperativeSession session(TestConfig(), sc);
  // Exactly max_package_age_s old: acceptable (the gate is strictly >)...
  EXPECT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 11.5).ok());
  EXPECT_EQ(session.stats().packages_rejected_stale, 0u);
  // ...one tick past it, rejected and counted as stale, not as regression.
  EXPECT_EQ(session.ReceivePackage(TinyPackage(2, 10.0), 11.5 + 1e-9).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().packages_rejected_stale, 1u);
  EXPECT_EQ(session.stats().packages_rejected_old, 0u);
}

TEST(SessionTest, SameTimestampBurstEvictionIsDeterministic) {
  // At the cap, a burst of same-timestamp newcomers must leave the session
  // in a state independent of arrival interleaving: ties keep incumbents,
  // and among equally stale incumbents the highest sender id goes first.
  SessionConfig sc;
  sc.max_cooperators = 2;
  CooperativeSession session(TestConfig(), sc);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  // Same-timestamp burst: every newcomer ties the stalest incumbent and is
  // rejected — the held set never churns.
  for (std::uint32_t sender : {5u, 6u, 7u}) {
    EXPECT_EQ(session.ReceivePackage(TinyPackage(sender, 10.0), 10.0).code(),
              StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(session.stats().packages_rejected_full, 3u);
  // A strictly fresher burst at one shared timestamp: the first arrival
  // evicts the higher-id equally-stale incumbent (2), the second evicts the
  // remaining stale one (1); the third ties and is rejected.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(5, 10.5), 10.5).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{1, 5}));
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(6, 10.5), 10.5).ok());
  EXPECT_EQ(session.Cooperators(), (std::vector<std::uint32_t>{5, 6}));
  EXPECT_EQ(session.ReceivePackage(TinyPackage(7, 10.5), 10.5).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(session.stats().packages_evicted, 2u);
}

TEST(SessionTest, CorruptCooperatorSkippedNotFatal) {
  CooperativeSession session(TestConfig());
  ExchangePackage bad = TinyPackage(1, 10.0);
  bad.payload = {0xff, 0xee, 0xdd};
  ASSERT_TRUE(session.ReceivePackage(bad, 10.0).ok());  // accepted at face value
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  const auto out = session.DetectCooperative(
      local, NavMetadata{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}}, 10.0);
  // Only the healthy cooperator's 2 points arrive.
  EXPECT_EQ(out.transmitter_points, 2u);
}

// ---------------------------------------------------------------------------
// Reconstruction cache + deterministic parallel fusion.

// Fusion outputs must be *bit*-identical across cache and thread settings, so
// every comparison below is exact, never approximate.
void ExpectBitIdentical(const CooperOutput& a, const CooperOutput& b,
                        const std::string& what) {
  EXPECT_EQ(a.transmitter_points, b.transmitter_points) << what;
  ASSERT_EQ(a.fused_cloud.size(), b.fused_cloud.size()) << what;
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < a.fused_cloud.size(); ++i) {
    const pc::Point& p = a.fused_cloud[i];
    const pc::Point& q = b.fused_cloud[i];
    if (p.position.x != q.position.x || p.position.y != q.position.y ||
        p.position.z != q.position.z || p.reflectance != q.reflectance) {
      ++mismatched;
    }
  }
  EXPECT_EQ(mismatched, 0u) << what << ": fused clouds differ";
  ASSERT_EQ(a.fused.detections.size(), b.fused.detections.size()) << what;
  for (std::size_t i = 0; i < a.fused.detections.size(); ++i) {
    const spod::Detection& d = a.fused.detections[i];
    const spod::Detection& e = b.fused.detections[i];
    EXPECT_EQ(d.box.center.x, e.box.center.x) << what;
    EXPECT_EQ(d.box.center.y, e.box.center.y) << what;
    EXPECT_EQ(d.box.center.z, e.box.center.z) << what;
    EXPECT_EQ(d.box.length, e.box.length) << what;
    EXPECT_EQ(d.box.width, e.box.width) << what;
    EXPECT_EQ(d.box.height, e.box.height) << what;
    EXPECT_EQ(d.box.yaw, e.box.yaw) << what;
    EXPECT_EQ(d.score, e.score) << what;
    EXPECT_EQ(d.cls, e.cls) << what;
    EXPECT_EQ(d.num_points, e.num_points) << what;
  }
}

const NavMetadata kEgoNav{{0, 0, 0}, {0, 0, 0}, {0, 0, 1.9}};

TEST(SessionCacheTest, SteadyStateHitsAndIdenticalOutput) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  const auto first = session.DetectCooperative(local, kEgoNav, 10.0);
  EXPECT_EQ(session.stats().recon_cache_misses, 2u);
  EXPECT_EQ(session.stats().recon_cache_hits, 0u);
  // Same packages, same nav: the second frame is served from the cache and
  // fuses to the exact same bytes.
  const auto second = session.DetectCooperative(local, kEgoNav, 10.1);
  EXPECT_EQ(session.stats().recon_cache_misses, 2u);
  EXPECT_EQ(session.stats().recon_cache_hits, 2u);
  ExpectBitIdentical(first, second, "steady state");
}

TEST(SessionCacheTest, ReplaceInvalidatesOnlyThatSender) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.0), 10.0).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  session.DetectCooperative(local, kEgoNav, 10.0);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.5), 10.5).ok());
  const auto out = session.DetectCooperative(local, kEgoNav, 10.5);
  // Sender 1 was replaced (recomputed); sender 2 still hits.
  EXPECT_EQ(session.stats().recon_cache_misses, 3u);
  EXPECT_EQ(session.stats().recon_cache_hits, 1u);
  // Correctness, not just reuse: identical to a session that never cached.
  SessionConfig no_cache;
  no_cache.cache_reconstructions = false;
  CooperativeSession fresh(TestConfig(), no_cache);
  ASSERT_TRUE(fresh.ReceivePackage(TinyPackage(1, 10.5), 10.5).ok());
  ASSERT_TRUE(fresh.ReceivePackage(TinyPackage(2, 10.0), 10.5).ok());
  ExpectBitIdentical(out, fresh.DetectCooperative(local, kEgoNav, 10.5),
                     "after replace");
}

TEST(SessionCacheTest, EvictionAndExpiryDropCachedClouds) {
  SessionConfig sc;
  sc.max_cooperators = 1;
  CooperativeSession session(TestConfig(), sc);
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  session.DetectCooperative(local, kEgoNav, 10.0);
  EXPECT_EQ(session.stats().recon_cache_misses, 1u);
  // Sender 2 evicts sender 1; its cloud must be reconstructed, not reused.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(2, 10.5), 10.5).ok());
  session.DetectCooperative(local, kEgoNav, 10.5);
  EXPECT_EQ(session.stats().recon_cache_misses, 2u);
  // Sender 1 returns after its old entry was invalidated: miss again.
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 11.0), 11.0).ok());
  session.DetectCooperative(local, kEgoNav, 11.0);
  EXPECT_EQ(session.stats().recon_cache_misses, 3u);
  EXPECT_EQ(session.stats().recon_cache_hits, 0u);
  // Expiry invalidates too: age the package out, re-receive, miss again.
  session.DetectCooperative(local, kEgoNav, 14.0);
  EXPECT_EQ(session.stats().packages_expired, 1u);
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 14.0), 14.0).ok());
  session.DetectCooperative(local, kEgoNav, 14.0);
  EXPECT_EQ(session.stats().recon_cache_misses, 4u);
}

TEST(SessionCacheTest, CorruptReplacementDoesNotServeStaleCloud) {
  // A healthy package is cached, then the sender replaces it with a frame
  // whose payload cannot decode.  The cached healthy cloud must not be
  // served for the corrupt replacement.
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  EXPECT_EQ(session.DetectCooperative(local, kEgoNav, 10.0).transmitter_points,
            2u);
  ExchangePackage bad = TinyPackage(1, 10.5);
  bad.payload = {0xff, 0xee, 0xdd};
  ASSERT_TRUE(session.ReceivePackage(bad, 10.5).ok());
  const auto out = session.DetectCooperative(local, kEgoNav, 10.5);
  EXPECT_EQ(out.transmitter_points, 0u);
  EXPECT_EQ(session.stats().packages_corrupt, 1u);
  EXPECT_EQ(session.num_cooperators(), 0u);
}

TEST(SessionCacheTest, NavChangeRealignsInsteadOfReusing) {
  CooperativeSession session(TestConfig());
  ASSERT_TRUE(session.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  pc::PointCloud local;
  local.Add({3, 0, 0}, 0.5f);
  session.DetectCooperative(local, kEgoNav, 10.0);
  // The receiver moved: the cached alignment is for the old pose, so this
  // frame recomputes (a miss) instead of serving a misaligned cloud.
  const NavMetadata moved{{1.0, -0.5, 0}, {0.1, 0, 0}, {0, 0, 1.9}};
  const auto out = session.DetectCooperative(local, moved, 10.1);
  EXPECT_EQ(session.stats().recon_cache_misses, 2u);
  EXPECT_EQ(session.stats().recon_cache_hits, 0u);
  SessionConfig no_cache;
  no_cache.cache_reconstructions = false;
  CooperativeSession fresh(TestConfig(), no_cache);
  ASSERT_TRUE(fresh.ReceivePackage(TinyPackage(1, 10.0), 10.0).ok());
  ExpectBitIdentical(out, fresh.DetectCooperative(local, moved, 10.1),
                     "after nav change");
}

TEST(SessionParallelTest, FusionBitIdenticalAcrossThreadsAndCache) {
  // The acceptance invariant of the parallel-fusion rework: DetectCooperative
  // output is bit-identical at 1 and N threads, with and without the
  // reconstruction cache.  Real scenario scans so reconstruction does real
  // work (decode, densify, Eq. 3) on every lane.
  const sim::Scenario scenario = [] {
    sim::Scenario sc = sim::MakeTjScenario(2);
    sc.lidar.azimuth_steps = 900;
    return sc;
  }();
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(scenario.seed);
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  std::vector<pc::PointCloud> clouds;
  std::vector<NavMetadata> navs;
  for (const auto& vp : scenario.viewpoints) {
    clouds.push_back(lidar.Scan(scenario.scene, vp.ToPose(), rng));
    navs.push_back(NavMetadata{vp.position, vp.attitude, mount});
  }

  auto run = [&](bool cache, int threads) {
    CooperConfig cfg = TestConfig();
    cfg.num_threads = threads;
    SessionConfig sc;
    sc.cache_reconstructions = cache;
    CooperativeSession session(cfg, sc);
    const CooperPipeline packer(TestConfig());
    for (std::size_t k = 1; k < clouds.size(); ++k) {
      EXPECT_TRUE(session
                      .ReceivePackage(
                          packer.MakePackage(static_cast<std::uint32_t>(k),
                                             10.0, RoiCategory::kFullFrame,
                                             navs[k], clouds[k]),
                          10.0)
                      .ok());
    }
    // Two frames: the first populates the cache, the second (the compared
    // one) exercises the hit path when the cache is on.
    session.DetectCooperative(clouds[0], navs[0], 10.0);
    return session.DetectCooperative(clouds[0], navs[0], 10.1);
  };

  const CooperOutput baseline = run(/*cache=*/false, /*threads=*/1);
  EXPECT_GT(baseline.transmitter_points, 0u);
  ExpectBitIdentical(baseline, run(false, 4), "uncached 4 threads");
  ExpectBitIdentical(baseline, run(true, 1), "cached 1 thread");
  ExpectBitIdentical(baseline, run(true, 4), "cached 4 threads");
}

TEST(SessionParallelTest, FeatureFusionBitIdenticalAcrossThreadsAndCache) {
  // Same invariant for the kVoxelFeatures path: codec decode, ego-grid
  // alignment, pseudo-point merge and maxout fusion must be bit-identical at
  // 1 and N threads, cache on and off.  Packages go through the real wire
  // (serialize + ReceiveWire) so the level byte is exercised end to end.
  const sim::Scenario scenario = [] {
    sim::Scenario sc = sim::MakeTjScenario(2);
    sc.lidar.azimuth_steps = 900;
    return sc;
  }();
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(scenario.seed);
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  std::vector<pc::PointCloud> clouds;
  std::vector<NavMetadata> navs;
  for (const auto& vp : scenario.viewpoints) {
    clouds.push_back(lidar.Scan(scenario.scene, vp.ToPose(), rng));
    navs.push_back(NavMetadata{vp.position, vp.attitude, mount});
  }

  auto run = [&](bool cache, int threads) {
    CooperConfig cfg = TestConfig();
    cfg.num_threads = threads;
    SessionConfig sc;
    sc.cache_reconstructions = cache;
    CooperativeSession session(cfg, sc);
    const CooperPipeline packer(TestConfig());
    for (std::size_t k = 1; k < clouds.size(); ++k) {
      const ExchangePackage package = packer.MakeLeveledPackage(
          static_cast<std::uint32_t>(k), 10.0, RoiCategory::kFrontSector,
          feat::ExchangeLevel::kVoxelFeatures, navs[k], clouds[k]);
      EXPECT_TRUE(
          session.ReceiveWire(net::SerializePackage(package), 10.0).ok());
    }
    session.DetectCooperative(clouds[0], navs[0], 10.0);
    return session.DetectCooperative(clouds[0], navs[0], 10.1);
  };

  const CooperOutput baseline = run(/*cache=*/false, /*threads=*/1);
  // Feature lanes contribute pseudo-points, so the fused cloud must have
  // grown beyond the local scan.
  EXPECT_GT(baseline.transmitter_points, 0u);
  EXPECT_GT(baseline.fused_cloud.size(), clouds[0].size());
  ExpectBitIdentical(baseline, run(false, 4), "feat uncached 4 threads");
  ExpectBitIdentical(baseline, run(true, 1), "feat cached 1 thread");
  ExpectBitIdentical(baseline, run(true, 4), "feat cached 4 threads");
}

TEST(SessionTest, UnknownLevelPackageCountedAndRejected) {
  // An intact package with an unknown level byte is version skew, not
  // corruption: rejected cleanly, counted in its own stat, and the sender
  // gains no slot.
  CooperativeSession session(TestConfig());
  auto wire = net::SerializePackage(TinyPackage(1, 10.0));
  wire[19] = 7;  // level byte: no such rung
  wire.resize(wire.size() - 4);
  const std::uint32_t crc = net::Crc32(wire.data(), wire.size());
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  const Status s = session.ReceiveWire(wire, 10.0);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(session.stats().packages_rejected_level, 1u);
  EXPECT_EQ(session.stats().packages_corrupt, 0u);
  EXPECT_EQ(session.num_cooperators(), 0u);
}

TEST(SessionWireFaultTest, ChannelDuplicatesSplitFromRetransmits) {
  // Regression for the conflated duplicate accounting: a channel that
  // duplicates every fragment used to inflate `frames_retransmitted` even
  // though the sender never retransmitted anything.  Duplicates of fragments
  // still held in a partial are channel noise (`frames_duplicate`); only a
  // fragment of an already-delivered package counts as a retransmit.
  CooperativeSession session(TestConfig());
  pc::PointCloud cloud;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    cloud.Add({5 + rng.Uniform(), rng.Uniform(), rng.Uniform()}, 0.5f);
  }
  const pc::CloudCodec codec;
  const ExchangePackage package =
      BuildPackage(1, 10.0, RoiCategory::kFullFrame, kEgoNav, cloud, codec);
  const std::vector<std::uint8_t> wire = net::SerializePackage(package);
  const auto frames = net::FragmentPackage(wire, /*sender_id=*/1,
                                           /*package_seq=*/0,
                                           /*mtu_bytes=*/160);
  ASSERT_TRUE(frames.ok());
  ASSERT_GE(frames->size(), 2u);

  net::FaultProfile profile;
  profile.duplicate_prob = 1.0;  // every fragment arrives twice
  net::FaultInjector injector(profile, /*seed=*/7);
  for (const auto& frame : *frames) {
    for (const auto& delivery : injector.Apply(frame)) {
      (void)session.ReceiveFrame(delivery.bytes, 10.0);
    }
  }
  ASSERT_EQ(injector.stats().frames_duplicated, frames->size());
  EXPECT_EQ(session.stats().packages_accepted, 1u);
  // All but the final fragment's copy duplicate a still-partial package; the
  // final copy lands after delivery, inside the retransmission window.
  EXPECT_EQ(session.stats().frames_duplicate, frames->size() - 1);
  EXPECT_EQ(session.stats().frames_retransmitted, 1u);
}

}  // namespace
}  // namespace cooper::core
