// Feature-level exchange: codec round trips, grid alignment, maxout fusion
// and the bandwidth-tiered exchange planner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "core/cooper.h"
#include "core/demand.h"
#include "eval/experiment.h"
#include "feat/codec.h"
#include "feat/feature_map.h"
#include "feat/fusion.h"
#include "feat/planner.h"
#include "pointcloud/codec.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

namespace cooper::feat {
namespace {

// Hand-built map: one feature row per coordinate, fixed grid geometry.
FeatureMap MakeMap(const std::vector<pc::VoxelCoord>& coords,
                   const std::vector<std::vector<float>>& features,
                   pc::VoxelCoord shape = {16, 16, 8},
                   geom::Vec3 origin = {0.0, -4.0, -1.0},
                   geom::Vec3 voxel_size = {0.5, 0.5, 0.5}) {
  const std::size_t channels = features.empty() ? 0 : features[0].size();
  FeatureMap map;
  map.tensor.coords = coords;
  map.tensor.spatial_shape = shape;
  map.tensor.features = nn::Tensor({coords.size(), channels});
  for (std::size_t i = 0; i < coords.size(); ++i) {
    for (std::size_t c = 0; c < channels; ++c) {
      map.tensor.features.At(i, c) = features[i][c];
    }
  }
  map.origin = origin;
  map.voxel_size = voxel_size;
  return map;
}

// A realistic map straight off the SPOD VFE tap, for integration-level tests.
FeatureMap RealVfeMap() {
  sim::Scenario scenario = sim::MakeTjScenario(2);
  scenario.lidar.azimuth_steps = 900;
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(scenario.seed);
  const pc::PointCloud cloud =
      lidar.Scan(scenario.scene, scenario.viewpoints[1].ToPose(), rng);
  const core::CooperPipeline pipeline(eval::MakeCooperConfig(scenario.lidar));
  return pipeline.detector().ExtractFeatureMap(cloud);
}

// --- FeatureMap / GridSpec ---

TEST(FeatureMapTest, Names) {
  EXPECT_STREQ(ExchangeLevelName(ExchangeLevel::kRawCloud), "raw cloud");
  EXPECT_STREQ(ExchangeLevelName(ExchangeLevel::kRoiCloud), "ROI cloud");
  EXPECT_STREQ(ExchangeLevelName(ExchangeLevel::kVoxelFeatures),
               "voxel features");
  EXPECT_STREQ(DemandClassName(DemandClass::kFullFrame), "full frame");
  EXPECT_STREQ(DemandClassName(DemandClass::kFrontSector), "front sector");
  EXPECT_STREQ(DemandClassName(DemandClass::kForwardLead), "forward lead");
}

TEST(FeatureMapTest, SiteCenterIsVoxelMidpoint) {
  const FeatureMap map = MakeMap({{2, 3, 1}}, {{1.0f}});
  const geom::Vec3 center = map.SiteCenter(map.tensor.coords[0]);
  EXPECT_DOUBLE_EQ(center.x, 0.0 + 2.5 * 0.5);
  EXPECT_DOUBLE_EQ(center.y, -4.0 + 3.5 * 0.5);
  EXPECT_DOUBLE_EQ(center.z, -1.0 + 1.5 * 0.5);
}

TEST(GridSpecTest, CoordMatchesVoxelGridAssignment) {
  // GridSpec::CoordOf must mirror VoxelGrid exactly — feature sites fused
  // into the ego grid land in the voxels the ego's own points would.
  pc::VoxelGridConfig cfg;
  cfg.min_bound = {0.0, -8.0, -2.0};
  cfg.max_bound = {16.0, 8.0, 2.0};
  cfg.voxel_size = {0.4, 0.4, 0.8};
  pc::PointCloud cloud;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    cloud.Add({rng.Uniform(0.0, 16.0), rng.Uniform(-8.0, 8.0),
               rng.Uniform(-2.0, 2.0)},
              0.5f);
  }
  const pc::VoxelGrid grid(cloud, cfg);
  const GridSpec spec = GridSpec::FromVoxelConfig(cfg);
  ASSERT_FALSE(grid.voxels().empty());
  for (const pc::Voxel& v : grid.voxels()) {
    pc::VoxelCoord c;
    ASSERT_TRUE(spec.CoordOf(grid.VoxelCenter(v.coord), &c));
    EXPECT_EQ(c, v.coord);
  }
}

TEST(GridSpecTest, HalfOpenBounds) {
  const GridSpec spec{{0, 0, 0}, {1, 1, 1}, {0.5, 0.5, 0.5}};
  pc::VoxelCoord c;
  EXPECT_TRUE(spec.CoordOf({0.0, 0.0, 0.0}, &c));
  EXPECT_EQ(c, (pc::VoxelCoord{0, 0, 0}));
  EXPECT_FALSE(spec.CoordOf({1.0, 0.5, 0.5}, &c));  // max bound is exclusive
  EXPECT_FALSE(spec.CoordOf({-1e-9, 0.5, 0.5}, &c));
  EXPECT_TRUE(spec.CoordOf({0.999, 0.999, 0.999}, &c));
  EXPECT_EQ(c, (pc::VoxelCoord{1, 1, 1}));
}

// --- Codec ---

TEST(FeatureCodecTest, EmptyMapRoundTrips) {
  // Zero sites is legal; zero *channels* is not (the decoder treats a
  // channel-less map as corruption, so build the empty map by hand).
  FeatureMap map = MakeMap({}, {});
  map.tensor.features = nn::Tensor({0, 4});
  const FeatureCodec codec;
  const auto bytes = codec.Encode(map);
  EXPECT_EQ(bytes.size(), codec.EncodedSize(map));
  const auto decoded = FeatureCodec::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_active(), 0u);
  EXPECT_EQ(decoded->channels(), 4u);
}

TEST(FeatureCodecTest, RoundTripPreservesStructure) {
  const FeatureMap map = MakeMap(
      {{1, 2, 0}, {5, 2, 1}, {5, 3, 1}, {0, 0, 7}},
      {{0.0f, 1.5f, 0.25f}, {2.0f, 0.0f, 0.5f}, {1.0f, 1.0f, 1.0f},
       {0.0f, 0.0f, 3.0f}});
  for (const int bits : {8, 16}) {
    const FeatureCodec codec(FeatureCodecConfig{bits});
    const auto bytes = codec.Encode(map);
    EXPECT_EQ(bytes.size(), codec.EncodedSize(map)) << bits;
    const auto decoded = FeatureCodec::Decode(bytes);
    ASSERT_TRUE(decoded.ok()) << bits;
    // Sites come back (z, y, x)-sorted; the set must be preserved.
    ASSERT_EQ(decoded->num_active(), map.num_active()) << bits;
    EXPECT_EQ(decoded->channels(), map.channels()) << bits;
    EXPECT_EQ(decoded->tensor.spatial_shape, map.tensor.spatial_shape) << bits;
    EXPECT_DOUBLE_EQ(decoded->origin.y, map.origin.y) << bits;
    EXPECT_DOUBLE_EQ(decoded->voxel_size.z, map.voxel_size.z) << bits;
    for (std::size_t i = 0; i < map.num_active(); ++i) {
      // Locate the original row for the decoded coordinate.
      std::size_t src = map.num_active();
      for (std::size_t j = 0; j < map.num_active(); ++j) {
        if (map.tensor.coords[j] == decoded->tensor.coords[i]) src = j;
      }
      ASSERT_LT(src, map.num_active()) << bits;
      for (std::size_t c = 0; c < map.channels(); ++c) {
        const float original = map.tensor.features.At(src, c);
        const float roundtrip = decoded->tensor.features.At(i, c);
        if (original == 0.0f) {
          // Exact zeros ride the mask, not the quantizer.
          EXPECT_EQ(roundtrip, 0.0f) << bits;
        } else {
          // Linear quantization error is at most half a step.
          const double step = bits == 8 ? 3.0 / 255.0 : 3.0 / 65535.0;
          EXPECT_NEAR(roundtrip, original, step / 2 + 1e-6) << bits;
        }
      }
    }
  }
}

TEST(FeatureCodecTest, ChannelMinimumDecodesExactly) {
  // zero_point is the channel minimum over nonzero values, so q = 0 decodes
  // to it bit-exactly regardless of bit depth.
  const FeatureMap map =
      MakeMap({{0, 0, 0}, {1, 0, 0}}, {{0.125f}, {7.75f}});
  for (const int bits : {8, 16}) {
    const auto decoded =
        FeatureCodec::Decode(FeatureCodec(FeatureCodecConfig{bits}).Encode(map));
    ASSERT_TRUE(decoded.ok());
    bool saw_min = false;
    for (std::size_t i = 0; i < decoded->num_active(); ++i) {
      saw_min = saw_min || decoded->tensor.features.At(i, 0) == 0.125f;
    }
    EXPECT_TRUE(saw_min) << bits;
  }
}

TEST(FeatureCodecTest, RoundTripStableAtBothBitDepths) {
  // Decode(Encode(map)) re-encodes to the identical byte stream: decoded
  // values sit exactly on their quantization levels.
  const FeatureMap map = RealVfeMap();
  ASSERT_GT(map.num_active(), 100u);
  for (const int bits : {8, 16}) {
    const FeatureCodec codec(FeatureCodecConfig{bits});
    const auto first = codec.Encode(map);
    const auto decoded = FeatureCodec::Decode(first);
    ASSERT_TRUE(decoded.ok()) << bits;
    const auto second = codec.Encode(*decoded);
    EXPECT_EQ(first, second) << "re-encode diverged at " << bits << " bits";
    // And the second decode is bit-identical to the first.
    const auto redecoded = FeatureCodec::Decode(second);
    ASSERT_TRUE(redecoded.ok()) << bits;
    ASSERT_EQ(redecoded->num_active(), decoded->num_active()) << bits;
    for (std::size_t i = 0; i < decoded->num_active(); ++i) {
      for (std::size_t c = 0; c < decoded->channels(); ++c) {
        EXPECT_EQ(decoded->tensor.features.At(i, c),
                  redecoded->tensor.features.At(i, c))
            << bits;
      }
    }
  }
}

TEST(FeatureCodecTest, SixteenBitIsTighterThanEightBit) {
  const FeatureMap map = RealVfeMap();
  auto max_error = [&](int bits) {
    const auto decoded =
        FeatureCodec::Decode(FeatureCodec(FeatureCodecConfig{bits}).Encode(map));
    EXPECT_TRUE(decoded.ok());
    double worst = 0.0;
    for (std::size_t i = 0; i < map.num_active(); ++i) {
      std::size_t row = map.num_active();
      for (std::size_t j = 0; j < decoded->num_active(); ++j) {
        if (decoded->tensor.coords[j] == map.tensor.coords[i]) row = j;
      }
      EXPECT_LT(row, decoded->num_active());
      for (std::size_t c = 0; c < map.channels(); ++c) {
        worst = std::max(worst,
                         std::abs(static_cast<double>(
                             decoded->tensor.features.At(row, c) -
                             map.tensor.features.At(i, c))));
      }
    }
    return worst;
  };
  const double e8 = max_error(8);
  const double e16 = max_error(16);
  EXPECT_LT(e16, e8);
  EXPECT_LT(e16, 1e-3);
}

TEST(FeatureCodecTest, FeaturePayloadBeatsRoiCloudFiveFold) {
  // The tentpole's bandwidth claim at the unit level: the quantized feature
  // map of a scan is >= 5x smaller than the compressed cloud it summarizes
  // (BENCH_feat.json asserts the same end-to-end).
  sim::Scenario scenario = sim::MakeTjScenario(2);
  scenario.lidar.azimuth_steps = 900;
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(scenario.seed);
  const pc::PointCloud cloud =
      lidar.Scan(scenario.scene, scenario.viewpoints[1].ToPose(), rng);
  const core::CooperPipeline pipeline(eval::MakeCooperConfig(scenario.lidar));
  const auto cloud_bytes = pc::CloudCodec().Encode(cloud);
  const auto feature_bytes =
      FeatureCodec().Encode(pipeline.detector().ExtractFeatureMap(cloud));
  EXPECT_GE(cloud_bytes.size(), 5 * feature_bytes.size())
      << cloud_bytes.size() << " cloud vs " << feature_bytes.size()
      << " feature bytes";
}

TEST(FeatureCodecTest, DefensiveDecodeRejectsDamage) {
  const FeatureMap map = MakeMap({{1, 1, 1}}, {{1.0f, 2.0f}});
  const auto bytes = FeatureCodec().Encode(map);
  {  // bad magic
    auto bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_EQ(FeatureCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
  }
  {  // unknown flag bits
    auto bad = bytes;
    bad[4] |= 0x80;
    EXPECT_EQ(FeatureCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
  }
  {  // trailing garbage
    auto bad = bytes;
    bad.push_back(0);
    EXPECT_EQ(FeatureCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
  }
  {  // every strict prefix fails cleanly
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(
          bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_EQ(FeatureCodec::Decode(prefix).status().code(),
                StatusCode::kDataLoss)
          << "prefix of " << cut << " bytes accepted";
    }
  }
}

// --- Fusion ---

TEST(FusionTest, IdentityAlignKeepsSitesAndEmitsPseudoPoints) {
  const FeatureMap map =
      MakeMap({{1, 2, 0}, {6, 6, 3}}, {{1.0f, 0.5f}, {0.25f, 2.0f}});
  const GridSpec grid{map.origin,
                      {map.origin.x + 16 * 0.5, map.origin.y + 16 * 0.5,
                       map.origin.z + 8 * 0.5},
                      map.voxel_size};
  const AlignedFeatures aligned = AlignToGrid(map, geom::Pose{}, grid);
  ASSERT_EQ(aligned.map.num_active(), 2u);
  EXPECT_EQ(aligned.map.tensor.coords[0], map.tensor.coords[0]);
  EXPECT_EQ(aligned.map.tensor.coords[1], map.tensor.coords[1]);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(aligned.map.tensor.features.At(i, c),
                map.tensor.features.At(i, c));
    }
  }
  ASSERT_EQ(aligned.pseudo.size(), 2u);
  for (std::size_t i = 0; i < aligned.pseudo.size(); ++i) {
    EXPECT_EQ(aligned.pseudo[i].reflectance, kPseudoPointReflectance);
    const geom::Vec3 center = map.SiteCenter(map.tensor.coords[i]);
    EXPECT_DOUBLE_EQ(aligned.pseudo[i].position.x, center.x);
    EXPECT_DOUBLE_EQ(aligned.pseudo[i].position.y, center.y);
    EXPECT_DOUBLE_EQ(aligned.pseudo[i].position.z, center.z);
  }
}

TEST(FusionTest, OutOfGridSitesDropped) {
  const FeatureMap map = MakeMap({{1, 1, 1}, {15, 15, 7}}, {{1.0f}, {2.0f}});
  // Ego grid covers only the first quadrant of the sender's extent.
  const GridSpec grid{map.origin,
                      {map.origin.x + 2.0, map.origin.y + 2.0,
                       map.origin.z + 2.0},
                      map.voxel_size};
  const AlignedFeatures aligned = AlignToGrid(map, geom::Pose{}, grid);
  ASSERT_EQ(aligned.map.num_active(), 1u);
  EXPECT_EQ(aligned.pseudo.size(), 1u);
  EXPECT_EQ(aligned.map.tensor.features.At(0, 0), 1.0f);
}

TEST(FusionTest, CollidingSitesMaxoutMergeInPlace) {
  // Ego voxels twice the size of the sender's: sites (2,0,0) and (3,0,0)
  // land in the same ego voxel and must channel-wise max into one site.
  const FeatureMap map =
      MakeMap({{2, 0, 0}, {3, 0, 0}}, {{1.0f, 5.0f}, {4.0f, 2.0f}});
  const GridSpec grid{map.origin,
                      {map.origin.x + 8.0, map.origin.y + 8.0,
                       map.origin.z + 4.0},
                      {1.0, 1.0, 1.0}};
  const AlignedFeatures aligned = AlignToGrid(map, geom::Pose{}, grid);
  ASSERT_EQ(aligned.map.num_active(), 1u);
  EXPECT_EQ(aligned.map.tensor.features.At(0, 0), 4.0f);
  EXPECT_EQ(aligned.map.tensor.features.At(0, 1), 5.0f);
  // One pseudo point per *surviving* site, not per input site.
  EXPECT_EQ(aligned.pseudo.size(), 1u);
}

TEST(FusionTest, TranslationShiftsSites) {
  const FeatureMap map = MakeMap({{0, 8, 2}}, {{1.0f}});
  const GridSpec grid{map.origin,
                      {map.origin.x + 8.0, map.origin.y + 8.0,
                       map.origin.z + 4.0},
                      map.voxel_size};
  // Sender sits 2 m behind the ego origin along x.
  const geom::Pose ego_from_sender(geom::Mat3::Identity(), {2.0, 0.0, 0.0});
  const AlignedFeatures aligned = AlignToGrid(map, ego_from_sender, grid);
  ASSERT_EQ(aligned.map.num_active(), 1u);
  EXPECT_EQ(aligned.map.tensor.coords[0], (pc::VoxelCoord{4, 8, 2}));
}

TEST(FusionTest, MaxoutFuseOverlapsAndAppends) {
  FeatureMap ego = MakeMap({{1, 1, 0}, {2, 2, 0}}, {{1.0f, 4.0f}, {3.0f, 0.0f}});
  const FeatureMap remote =
      MakeMap({{1, 1, 0}, {5, 5, 1}}, {{2.0f, 3.0f}, {7.0f, 8.0f}});
  const std::size_t fused = MaxoutFuse(&ego.tensor, {&remote});
  EXPECT_EQ(fused, 1u);
  ASSERT_EQ(ego.num_active(), 3u);
  // Overlapping site (1,1,0): per-channel max.
  EXPECT_EQ(ego.tensor.features.At(0, 0), 2.0f);
  EXPECT_EQ(ego.tensor.features.At(0, 1), 4.0f);
  // Untouched local site.
  EXPECT_EQ(ego.tensor.features.At(1, 0), 3.0f);
  // Remote-only site appended after the locals.
  EXPECT_EQ(ego.tensor.coords[2], (pc::VoxelCoord{5, 5, 1}));
  EXPECT_EQ(ego.tensor.features.At(2, 0), 7.0f);
  EXPECT_EQ(ego.tensor.features.At(2, 1), 8.0f);
}

TEST(FusionTest, MaxoutFuseSkipsChannelMismatch) {
  FeatureMap ego = MakeMap({{1, 1, 0}}, {{1.0f, 1.0f}});
  const FeatureMap narrow = MakeMap({{1, 1, 0}}, {{9.0f}});
  const FeatureMap wide = MakeMap({{1, 1, 0}}, {{2.0f, 2.0f}});
  EXPECT_EQ(MaxoutFuse(&ego.tensor, {&narrow, &wide}), 1u);
  EXPECT_EQ(ego.tensor.features.At(0, 0), 2.0f);  // mismatched map ignored
}

TEST(FusionTest, MaxoutFuseIsOrderInsensitiveForMax) {
  // max is commutative, so permuting cooperator order changes site *values*
  // nowhere; the session still fixes the order (ascending sender) so that
  // appended-site ordering is deterministic too.
  FeatureMap a = MakeMap({{1, 1, 0}}, {{1.0f}});
  FeatureMap b = a;
  const FeatureMap m1 = MakeMap({{1, 1, 0}, {2, 2, 0}}, {{5.0f}, {6.0f}});
  const FeatureMap m2 = MakeMap({{1, 1, 0}, {3, 3, 0}}, {{4.0f}, {7.0f}});
  MaxoutFuse(&a.tensor, {&m1, &m2});
  MaxoutFuse(&b.tensor, {&m2, &m1});
  EXPECT_EQ(a.tensor.features.At(0, 0), b.tensor.features.At(0, 0));
  EXPECT_EQ(a.num_active(), b.num_active());
}

TEST(FusionTest, MaxPoolMergesBlockByChannelMax) {
  // All eight corners of the {0,0,0} 2x2x2 block plus one site in the next
  // block along x: pooling at factor 2 keeps two coarse sites.
  std::vector<pc::VoxelCoord> coords;
  std::vector<std::vector<float>> feats;
  float v = 1.0f;
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 2; ++y) {
      for (int x = 0; x < 2; ++x) {
        coords.push_back({x, y, z});
        feats.push_back({v, -v});
        v += 1.0f;
      }
    }
  }
  coords.push_back({2, 0, 0});
  feats.push_back({100.0f, -100.0f});
  const FeatureMap map = MakeMap(coords, feats);
  const FeatureMap pooled = MaxPool(map, 2);
  ASSERT_EQ(pooled.num_active(), 2u);
  EXPECT_EQ(pooled.tensor.coords[0], (pc::VoxelCoord{0, 0, 0}));
  EXPECT_EQ(pooled.tensor.coords[1], (pc::VoxelCoord{1, 0, 0}));
  // Channel-wise max, not first-wins: channel 0 takes the largest corner,
  // channel 1 the least-negative one.
  EXPECT_EQ(pooled.tensor.features.At(0, 0), 8.0f);
  EXPECT_EQ(pooled.tensor.features.At(0, 1), -1.0f);
  EXPECT_EQ(pooled.tensor.features.At(1, 0), 100.0f);
}

TEST(FusionTest, MaxPoolScalesGeometryAndShape) {
  const FeatureMap map = MakeMap({{5, 7, 3}}, {{1.0f}}, {17, 16, 7});
  const FeatureMap pooled = MaxPool(map, 2);
  EXPECT_EQ(pooled.origin.x, map.origin.x);
  EXPECT_EQ(pooled.voxel_size.x, 1.0);
  EXPECT_EQ(pooled.voxel_size.z, 1.0);
  // Shape rounds up so every fine site still falls inside the coarse grid.
  EXPECT_EQ(pooled.tensor.spatial_shape, (pc::VoxelCoord{9, 8, 4}));
  ASSERT_EQ(pooled.num_active(), 1u);
  EXPECT_EQ(pooled.tensor.coords[0], (pc::VoxelCoord{2, 3, 1}));
  // The coarse site's metric center stays within a coarse voxel of the fine
  // site's center — AlignToGrid consumes it with no special casing.
  const geom::Vec3 fine = map.SiteCenter(map.tensor.coords[0]);
  const geom::Vec3 coarse = pooled.SiteCenter(pooled.tensor.coords[0]);
  EXPECT_LE(std::abs(fine.x - coarse.x), pooled.voxel_size.x);
  EXPECT_LE(std::abs(fine.y - coarse.y), pooled.voxel_size.y);
  EXPECT_LE(std::abs(fine.z - coarse.z), pooled.voxel_size.z);
}

TEST(FusionTest, MaxPoolFactorOneIsIdentity) {
  const FeatureMap map = RealVfeMap();
  const FeatureMap pooled = MaxPool(map, 1);
  ASSERT_EQ(pooled.num_active(), map.num_active());
  EXPECT_EQ(pooled.voxel_size.x, map.voxel_size.x);
  for (std::size_t i = 0; i < map.num_active(); ++i) {
    EXPECT_EQ(pooled.tensor.coords[i], map.tensor.coords[i]);
  }
}

TEST(FusionTest, MaxPoolShrinksRealVfeMapAndItsPayload) {
  const FeatureMap map = RealVfeMap();
  const FeatureMap pooled = MaxPool(map, 2);
  ASSERT_GT(map.num_active(), 0u);
  EXPECT_LT(pooled.num_active(), map.num_active());
  const FeatureCodec codec{FeatureCodecConfig{}};
  EXPECT_LT(codec.Encode(pooled).size(), codec.Encode(map).size());
  // Pooled maps still round-trip through the wire codec.
  const auto decoded = codec.Decode(codec.Encode(pooled));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().num_active(), pooled.num_active());
}

// --- Planner ---

CooperatorDemand Demand(std::uint32_t id, DemandClass demand,
                        std::size_t raw, std::size_t roi, std::size_t feature) {
  CooperatorDemand d;
  d.sender_id = id;
  d.demand = demand;
  d.raw_bytes = raw;
  d.roi_bytes = roi;
  d.feature_bytes = feature;
  return d;
}

PlannerConfig FastChannel() {
  PlannerConfig cfg;
  cfg.channel.data_rate_mbps = 6.0;
  cfg.channel.usable_fraction = 0.9;
  cfg.channel.access_latency_ms = 2.0;
  return cfg;
}

TEST(PlannerTest, UnderBudgetKeepsPreferredLevels) {
  const ExchangePlan plan = PlanExchange(
      FastChannel(), {Demand(1, DemandClass::kFullFrame, 2000, 800, 100),
                      Demand(2, DemandClass::kFrontSector, 2000, 800, 100)});
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].level, ExchangeLevel::kRawCloud);
  EXPECT_EQ(plan.entries[1].level, ExchangeLevel::kRoiCloud);
  EXPECT_EQ(plan.degrade_steps, 0u);
  EXPECT_FALSE(plan.over_budget);
  EXPECT_LE(plan.airtime_ms, plan.budget_ms);
}

TEST(PlannerTest, DegradesLargestSavingFirst) {
  PlannerConfig cfg = FastChannel();
  cfg.channel.data_rate_mbps = 0.2;  // squeeze until someone must degrade
  cfg.budget_fraction = 0.5;
  const ExchangePlan plan = PlanExchange(
      cfg, {Demand(1, DemandClass::kFullFrame, 4000, 400, 50),
            Demand(2, DemandClass::kFullFrame, 900, 800, 50)});
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_GT(plan.degrade_steps, 0u);
  // Sender 1's raw->ROI step sheds 3600 bytes, sender 2's only 100: sender 1
  // must have stepped down before sender 2 loses its raw level.
  const PlanEntry* e1 = plan.Find(1);
  ASSERT_NE(e1, nullptr);
  EXPECT_NE(e1->level, ExchangeLevel::kRawCloud);
}

TEST(PlannerTest, TieBreakDegradesHigherSenderFirst) {
  PlannerConfig cfg = FastChannel();
  // Budget fits exactly one raw payload plus one ROI payload: at 0.072
  // effective Mbps, raw+raw costs ~226 ms, raw+ROI ~148 ms, budget 175 ms.
  cfg.channel.data_rate_mbps = 0.08;
  cfg.frame_period_s = 0.5;
  cfg.budget_fraction = 0.35;
  const ExchangePlan plan = PlanExchange(
      cfg, {Demand(1, DemandClass::kFullFrame, 1000, 300, 40),
            Demand(2, DemandClass::kFullFrame, 1000, 300, 40)});
  ASSERT_EQ(plan.entries.size(), 2u);
  const PlanEntry* e1 = plan.Find(1);
  const PlanEntry* e2 = plan.Find(2);
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  // Identical savings: the higher sender id degrades first, so the single
  // degrade step must have landed on sender 2.
  EXPECT_EQ(plan.degrade_steps, 1u);
  EXPECT_EQ(e1->level, ExchangeLevel::kRawCloud);
  EXPECT_EQ(e2->level, ExchangeLevel::kRoiCloud);
  EXPECT_FALSE(plan.over_budget);
}

TEST(PlannerTest, OverBudgetReportedWhenAllFeaturesOverflow) {
  PlannerConfig cfg = FastChannel();
  cfg.channel.data_rate_mbps = 0.001;  // nothing fits
  const ExchangePlan plan = PlanExchange(
      cfg, {Demand(1, DemandClass::kFullFrame, 4000, 800, 400),
            Demand(2, DemandClass::kForwardLead, 4000, 800, 400)});
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_TRUE(plan.over_budget);
  for (const PlanEntry& e : plan.entries) {
    EXPECT_EQ(e.level, ExchangeLevel::kVoxelFeatures);
  }
  EXPECT_GT(plan.airtime_ms, plan.budget_ms);
}

TEST(PlannerTest, CanonicalisesSenderOrderAndDuplicates) {
  const ExchangePlan plan = PlanExchange(
      FastChannel(), {Demand(5, DemandClass::kFrontSector, 100, 50, 10),
                      Demand(2, DemandClass::kFrontSector, 100, 50, 10),
                      Demand(5, DemandClass::kFullFrame, 900, 700, 300)});
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].sender_id, 2u);
  EXPECT_EQ(plan.entries[1].sender_id, 5u);
  // Duplicate sender keeps the first occurrence (front-sector demand).
  EXPECT_EQ(plan.entries[1].level, ExchangeLevel::kRoiCloud);
  EXPECT_EQ(plan.entries[1].bytes, 50u);
  EXPECT_EQ(plan.Find(7), nullptr);
}

TEST(PlannerTest, AirtimeScalesWithBytesAndFloorsAtAccessLatency) {
  const PlannerConfig cfg = FastChannel();
  EXPECT_DOUBLE_EQ(AirtimeMs(cfg.channel, 0), cfg.channel.access_latency_ms);
  const double one_kb = AirtimeMs(cfg.channel, 1024);
  const double two_kb = AirtimeMs(cfg.channel, 2048);
  EXPECT_GT(one_kb, cfg.channel.access_latency_ms);
  EXPECT_DOUBLE_EQ(two_kb - one_kb, one_kb - cfg.channel.access_latency_ms);
}

TEST(PlannerTest, ZeroBudgetDegradesEveryoneAndReportsOverBudget) {
  PlannerConfig cfg = FastChannel();
  cfg.budget_fraction = 0.0;  // adversarial: no airtime at all
  const ExchangePlan plan = PlanExchange(
      cfg, {Demand(1, DemandClass::kFullFrame, 4000, 800, 100),
            Demand(2, DemandClass::kFrontSector, 4000, 800, 100),
            Demand(3, DemandClass::kForwardLead, 4000, 800, 100)});
  ASSERT_EQ(plan.entries.size(), 3u);
  EXPECT_EQ(plan.budget_ms, 0.0);
  // Nothing fits, so every cooperator bottoms out at features and the plan
  // says so rather than looping or dropping entries.
  EXPECT_TRUE(plan.over_budget);
  for (const PlanEntry& e : plan.entries) {
    EXPECT_EQ(e.level, ExchangeLevel::kVoxelFeatures);
    EXPECT_EQ(e.bytes, 100u);
  }
  EXPECT_GT(plan.airtime_ms, plan.budget_ms);
}

TEST(PlannerTest, AllEqualSavingsDegradeHighestSendersFirst) {
  // Eight identical full-frame cooperators; the budget fits five raw payloads
  // plus three ROI payloads.  Every raw->ROI step sheds the same bytes, so
  // the only thing picking who degrades is the sender-id tie-break: the
  // degrade steps must land on the three *highest* ids, never on an
  // arbitrary (e.g. heap-order) subset.
  PlannerConfig cfg = FastChannel();
  cfg.channel.data_rate_mbps = 0.08;
  cfg.channel.access_latency_ms = 2.0;
  cfg.frame_period_s = 1.0;
  // Raw airtime ~113.1 ms each, ROI ~35.3 ms: 5 raw + 3 ROI ~671 ms.
  cfg.budget_fraction = 0.68;
  std::vector<CooperatorDemand> demands;
  for (std::uint32_t id = 1; id <= 8; ++id) {
    demands.push_back(Demand(id, DemandClass::kFullFrame, 1000, 300, 40));
  }
  const ExchangePlan plan = PlanExchange(cfg, demands);
  ASSERT_EQ(plan.entries.size(), 8u);
  EXPECT_EQ(plan.degrade_steps, 3u);
  EXPECT_FALSE(plan.over_budget);
  for (const PlanEntry& e : plan.entries) {
    EXPECT_EQ(e.level, e.sender_id <= 5 ? ExchangeLevel::kRawCloud
                                        : ExchangeLevel::kRoiCloud)
        << "sender " << e.sender_id;
  }
}

TEST(PlannerTest, HundredCooperatorsShuffledInputPlansIdentically) {
  // Well past any fixed-size assumption (64 is the fleet cap elsewhere in the
  // stack): 100 cooperators with varied sizes and demand classes, squeezed
  // hard enough that most of them degrade.  The plan must be a pure function
  // of the demand *set* — feeding a shuffled copy must reproduce every entry
  // bit for bit, in ascending sender order.
  PlannerConfig cfg = FastChannel();
  cfg.channel.data_rate_mbps = 0.5;
  cfg.budget_fraction = 0.6;
  std::vector<CooperatorDemand> demands;
  for (std::uint32_t id = 1; id <= 100; ++id) {
    const DemandClass demand = id % 3 == 0 ? DemandClass::kFullFrame
                             : id % 3 == 1 ? DemandClass::kFrontSector
                                           : DemandClass::kForwardLead;
    demands.push_back(Demand(id, demand, 800 + 37 * (id % 11),
                             300 + 13 * (id % 7), 40 + (id % 5)));
  }
  std::vector<CooperatorDemand> shuffled = demands;
  Rng rng(99);  // Fisher-Yates with the repo Rng: deterministic shuffle
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.Uniform(0.0, static_cast<double>(i)));
    std::swap(shuffled[i - 1], shuffled[j < i ? j : i - 1]);
  }
  const ExchangePlan sorted_plan = PlanExchange(cfg, demands);
  const ExchangePlan shuffled_plan = PlanExchange(cfg, shuffled);

  ASSERT_EQ(sorted_plan.entries.size(), 100u);
  ASSERT_EQ(shuffled_plan.entries.size(), 100u);
  EXPECT_EQ(sorted_plan.degrade_steps, shuffled_plan.degrade_steps);
  EXPECT_GT(sorted_plan.degrade_steps, 0u);  // the squeeze actually bites
  EXPECT_EQ(sorted_plan.over_budget, shuffled_plan.over_budget);
  EXPECT_EQ(sorted_plan.airtime_ms, shuffled_plan.airtime_ms);  // bit-equal
  for (std::size_t i = 0; i < sorted_plan.entries.size(); ++i) {
    const PlanEntry& a = sorted_plan.entries[i];
    const PlanEntry& b = shuffled_plan.entries[i];
    // Canonical ascending order regardless of input order.
    EXPECT_EQ(a.sender_id, static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(a.sender_id, b.sender_id);
    EXPECT_EQ(a.level, b.level) << "sender " << a.sender_id;
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.airtime_ms, b.airtime_ms);  // bit-equal, not approximately
  }
}

TEST(PlannerTest, DemandClassMirrorsRoiCategory) {
  EXPECT_EQ(core::DemandClassFor(core::RoiCategory::kFullFrame),
            DemandClass::kFullFrame);
  EXPECT_EQ(core::DemandClassFor(core::RoiCategory::kFrontSector),
            DemandClass::kFrontSector);
  EXPECT_EQ(core::DemandClassFor(core::RoiCategory::kForwardLead),
            DemandClass::kForwardLead);
  const CooperatorDemand d = core::MakeCooperatorDemand(
      9, core::RoiCategory::kFullFrame, 300, 200, 100);
  EXPECT_EQ(d.sender_id, 9u);
  EXPECT_EQ(d.BytesAt(ExchangeLevel::kRawCloud), 300u);
  EXPECT_EQ(d.BytesAt(ExchangeLevel::kRoiCloud), 200u);
  EXPECT_EQ(d.BytesAt(ExchangeLevel::kVoxelFeatures), 100u);
}

}  // namespace
}  // namespace cooper::feat
