// Edge fusion service: discrete-event scheduler, deadline-aware executor,
// admission ladder/ledger, session housekeeping, and the headline
// determinism contract — a recorded load run verifies bit-identically under
// different real thread counts and shard counts.
#include <gtest/gtest.h>

#include <vector>

#include "eval/experiment.h"
#include "feat/planner.h"
#include "serve/admission.h"
#include "serve/executor.h"
#include "serve/load.h"
#include "serve/scheduler.h"
#include "serve/service.h"

namespace cooper::serve {
namespace {

// --- Scheduler ---

TEST(SchedulerTest, RunsEventsInTimeThenFifoOrderAndClampsPast) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(0.2, [&](double) { order.push_back(1); });
  sched.At(0.1, [&](double now) {
    order.push_back(2);
    // Scheduling in the past clamps to the current clock: fires at 0.1,
    // after everything already queued for that instant, before 0.2.
    EXPECT_DOUBLE_EQ(now, 0.1);
    sched.At(0.05, [&](double at) {
      order.push_back(4);
      EXPECT_DOUBLE_EQ(at, 0.1);
    });
  });
  sched.At(0.1, [&](double) { order.push_back(3); });  // same-time: FIFO
  const std::size_t ran = sched.RunUntil(1.0);
  EXPECT_EQ(ran, 4u);
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 1}));
  EXPECT_DOUBLE_EQ(sched.now_s(), 1.0);  // clock ends at the horizon
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerTest, HorizonSplitsEventStream) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(0.5, [&](double) { order.push_back(1); });
  sched.At(1.5, [&](double) { order.push_back(2); });
  EXPECT_EQ(sched.RunUntil(1.0), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(sched.RunUntil(2.0), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- Timer wheel ---

TEST(TimerWheelTest, FiresDueTimersInSlotThenIdOrder) {
  TimerWheel wheel(0.1, 8);
  std::vector<std::uint64_t> fired;
  const auto fire = [&](std::uint64_t id) { fired.push_back(id); };
  wheel.Arm(1, 0.05);
  wheel.Arm(5, 0.41);
  wheel.Arm(4, 0.45);  // same slot as id 5: ascending id fires first
  EXPECT_EQ(wheel.armed(), 3u);
  EXPECT_EQ(wheel.Advance(0.1, fire), 1u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.Advance(0.5, fire), 2u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 4, 5}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, ParksBeyondSpanCancelsAndReplacesOnRearm) {
  TimerWheel wheel(0.1, 8);  // span 0.8 s
  std::vector<std::uint64_t> fired;
  const auto fire = [&](std::uint64_t id) { fired.push_back(id); };
  wheel.Arm(7, 1.6);             // beyond the span: parked, not fired early
  EXPECT_EQ(wheel.Advance(0.8, fire), 0u);
  EXPECT_EQ(wheel.Advance(1.2, fire), 0u);
  EXPECT_EQ(wheel.Advance(1.7, fire), 1u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{7}));

  wheel.Arm(8, 2.0);
  wheel.Arm(8, 5.0);  // re-arm replaces
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_EQ(wheel.Advance(2.5, fire), 0u);
  wheel.Cancel(8);
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_EQ(wheel.Advance(9.0, fire), 0u);  // full-revolution jump, nothing
}

// --- Executor ---

TEST(ExecutorTest, SchedulesEdfWithTotalTieBreak) {
  FusionExecutor ex(ExecutorConfig{1});
  ex.Submit(1, 0.0, 2.0);   // seq 0: latest deadline, runs last
  ex.Submit(2, 0.1, 1.0);   // seq 1: deadline tie with seq 2, later due
  ex.Submit(3, 0.05, 1.0);  // seq 2: deadline tie, earlier due -> first
  std::vector<ScheduledJob> scheduled;
  std::vector<FusionJob> missed;
  ex.Flush(0.0, [](const FusionJob&) { return 0.1; }, &scheduled, &missed);
  ASSERT_EQ(scheduled.size(), 3u);
  EXPECT_TRUE(missed.empty());
  EXPECT_EQ(scheduled[0].job.vehicle, 3u);
  EXPECT_EQ(scheduled[1].job.vehicle, 2u);
  EXPECT_EQ(scheduled[2].job.vehicle, 1u);
  // One modeled core: jobs serialize; start also waits for the due time.
  EXPECT_DOUBLE_EQ(scheduled[0].start_s, 0.05);
  EXPECT_DOUBLE_EQ(scheduled[0].finish_s, 0.15);
  EXPECT_DOUBLE_EQ(scheduled[1].start_s, 0.15);
  EXPECT_DOUBLE_EQ(scheduled[2].start_s, 0.25);
  EXPECT_EQ(ex.stats().jobs_scheduled, 3u);
}

TEST(ExecutorTest, DropsJobsThatCannotMeetTheirDeadline) {
  FusionExecutor ex(ExecutorConfig{1});
  ex.Submit(1, 0.0, 0.4);  // cost 0.5 -> cannot finish by 0.4
  ex.Submit(2, 0.0, 0.6);  // fits exactly on the free core
  ex.Submit(3, 0.0, 0.9);  // core busy until 0.5, finish 1.0 > 0.9 -> miss
  std::vector<ScheduledJob> scheduled;
  std::vector<FusionJob> missed;
  ex.Flush(0.0, [](const FusionJob&) { return 0.5; }, &scheduled, &missed);
  ASSERT_EQ(scheduled.size(), 1u);
  EXPECT_EQ(scheduled[0].job.vehicle, 2u);
  ASSERT_EQ(missed.size(), 2u);
  EXPECT_EQ(missed[0].vehicle, 1u);  // EDF order: earliest deadline decided
  EXPECT_EQ(missed[1].vehicle, 3u);  // first
  EXPECT_EQ(ex.stats().jobs_missed, 2u);
  EXPECT_EQ(ex.queue_depth(), 0u);  // flush always drains
}

TEST(ExecutorTest, CoreAvailabilityPersistsAcrossFlushes) {
  FusionExecutor ex(ExecutorConfig{1});
  ex.Submit(1, 0.0, 2.0);
  std::vector<ScheduledJob> scheduled;
  std::vector<FusionJob> missed;
  ex.Flush(0.0, [](const FusionJob&) { return 1.0; }, &scheduled, &missed);
  ASSERT_EQ(scheduled.size(), 1u);
  EXPECT_DOUBLE_EQ(scheduled[0].finish_s, 1.0);

  // The core stays busy until t=1.0 even though real time is only t=0.1:
  // a backlog carries into the next flush exactly like a busy machine.
  scheduled.clear();
  ex.Submit(2, 0.1, 1.05);  // would need to start by 0.95: impossible
  ex.Submit(3, 0.1, 1.5);   // starts when the core frees at 1.0
  ex.Flush(0.1, [](const FusionJob&) { return 0.1; }, &scheduled, &missed);
  ASSERT_EQ(scheduled.size(), 1u);
  EXPECT_EQ(scheduled[0].job.vehicle, 3u);
  EXPECT_DOUBLE_EQ(scheduled[0].start_s, 1.0);
  ASSERT_EQ(missed.size(), 1u);
  EXPECT_EQ(missed[0].vehicle, 2u);
}

// --- Admission ---

std::vector<feat::CooperatorDemand> MakeDemands(int n) {
  std::vector<feat::CooperatorDemand> demands;
  for (int i = 0; i < n; ++i) {
    feat::CooperatorDemand d;
    d.sender_id = static_cast<std::uint32_t>(10 + i);
    d.demand = feat::DemandClass::kFullFrame;  // prefers the raw rung
    d.raw_bytes = 4000;
    d.roi_bytes = 2000;
    d.feature_bytes = 500;
    demands.push_back(d);
  }
  return demands;
}

TEST(AdmissionTest, FullQueueRejectsWholeWindowInAscendingSenderOrder) {
  AdmissionConfig cfg;
  cfg.max_queue = 100;
  AdmissionController adm(cfg);
  auto demands = MakeDemands(3);
  std::swap(demands[0], demands[2]);  // arrival order must not matter
  const WindowPlan plan = adm.PlanWindow(demands, /*queue_depth=*/100, 0.0);
  ASSERT_EQ(plan.decisions.size(), 3u);
  EXPECT_EQ(plan.rejected, 3u);
  EXPECT_EQ(plan.admitted, 0u);
  for (std::size_t i = 0; i < plan.decisions.size(); ++i) {
    EXPECT_FALSE(plan.decisions[i].admitted);
    EXPECT_EQ(plan.decisions[i].sender_id, 10u + i);
  }
  EXPECT_EQ(adm.stats().windows_rejected_queue, 1u);
}

TEST(AdmissionTest, QueueDepthStepsExchangesDownTheLadder) {
  AdmissionConfig cfg;
  cfg.max_queue = 100;  // raw cap at depth >= 50, feature cap at >= 75
  AdmissionController adm(cfg);

  // Idle node: kFullFrame demand earns the raw rung.
  WindowPlan idle = adm.PlanWindow(MakeDemands(1), 0, 0.0);
  ASSERT_EQ(idle.decisions.size(), 1u);
  EXPECT_TRUE(idle.decisions[0].admitted);
  EXPECT_EQ(idle.decisions[0].level, feat::ExchangeLevel::kRawCloud);
  EXPECT_FALSE(idle.decisions[0].downgraded);

  // Half-full queue: capped at ROI, reported as a downgrade.
  WindowPlan busy = adm.PlanWindow(MakeDemands(1), 50, 0.0);
  EXPECT_TRUE(busy.decisions[0].admitted);
  EXPECT_EQ(busy.decisions[0].level, feat::ExchangeLevel::kRoiCloud);
  EXPECT_TRUE(busy.decisions[0].downgraded);
  EXPECT_EQ(busy.downgraded, 1u);

  // Nearly saturated: features only.
  WindowPlan sat = adm.PlanWindow(MakeDemands(1), 75, 0.0);
  EXPECT_TRUE(sat.decisions[0].admitted);
  EXPECT_EQ(sat.decisions[0].level, feat::ExchangeLevel::kVoxelFeatures);
  EXPECT_TRUE(sat.decisions[0].downgraded);
}

TEST(AdmissionTest, AirtimeLedgerStarvesHighestSendersThenRolls) {
  AdmissionConfig cfg;
  cfg.airtime_period_s = 1.0;
  // Budget fits exactly one raw exchange per period (plus slack well short
  // of two), so of each window's demands only the lowest sender id wins.
  const double one_ms =
      feat::AirtimeMs(cfg.planner.channel, MakeDemands(1)[0].raw_bytes);
  cfg.airtime_budget_fraction = 1.5 * one_ms / 1000.0;
  AdmissionController adm(cfg);

  const WindowPlan plan = adm.PlanWindow(MakeDemands(3), 0, 0.2);
  ASSERT_EQ(plan.decisions.size(), 3u);
  EXPECT_TRUE(plan.decisions[0].admitted);   // sender 10
  EXPECT_FALSE(plan.decisions[1].admitted);  // sender 11: over the ledger
  EXPECT_FALSE(plan.decisions[2].admitted);  // sender 12
  EXPECT_EQ(plan.admitted, 1u);
  EXPECT_EQ(plan.rejected, 2u);
  EXPECT_NEAR(plan.ledger_spent_ms, one_ms, 1e-9);

  // Same period: the ledger remembers earlier spending.
  const WindowPlan again = adm.PlanWindow(MakeDemands(1), 0, 0.6);
  EXPECT_FALSE(again.decisions[0].admitted);

  // Next period (anchored to multiples of the length): budget is fresh.
  const WindowPlan rolled = adm.PlanWindow(MakeDemands(1), 0, 1.3);
  EXPECT_TRUE(rolled.decisions[0].admitted);
  EXPECT_GT(adm.stats().windows_rejected_airtime, 0u);
}

// --- EdgeService ---

sim::LidarConfig TinyLidar() {
  sim::LidarConfig lidar;
  lidar.beams = 6;
  lidar.azimuth_steps = 96;
  return lidar;
}

TEST(EdgeServiceTest, ShardHashIsStableAndInRange) {
  ServeConfig cfg;
  cfg.shards = 4;
  EdgeService svc(eval::MakeCooperConfig(TinyLidar()), cfg);
  bool multiple_shards_used = false;
  for (std::uint32_t v = 1; v <= 64; ++v) {
    const std::uint32_t shard = svc.ShardOf(v);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, svc.ShardOf(v));  // pure function of the id
    if (shard != svc.ShardOf(1)) multiple_shards_used = true;
  }
  EXPECT_TRUE(multiple_shards_used);  // the avalanche actually spreads
}

TEST(EdgeServiceTest, SweepTimerExpiresIdleSessionState) {
  LoadConfig load = MakeLoadConfig();
  load.lidar = TinyLidar();
  const core::CooperConfig pipe = eval::MakeCooperConfig(load.lidar);
  ServeConfig cfg;
  cfg.session.max_package_age_s = 1.5;
  EdgeService svc(pipe, cfg);

  sim::Scenario scenario = sim::MakeTjScenario(2);
  scenario.lidar = load.lidar;
  const sim::LidarSimulator lidar(load.lidar);
  Rng rng(7);
  const pc::PointCloud cloud =
      lidar.Scan(scenario.scene, scenario.viewpoints[0].ToPose(), rng);
  const core::NavMetadata nav{scenario.viewpoints[0].position,
                              scenario.viewpoints[0].attitude,
                              {0, 0, load.lidar.sensor_height}};
  svc.RegisterVehicle(1, &cloud, nav);

  core::CooperativeSession* session = svc.session(1);
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(session
                  ->ReceivePackage(
                      session->pipeline().MakePackage(
                          2, 10.0, core::RoiCategory::kFullFrame, nav, cloud),
                      10.0)
                  .ok());
  EXPECT_EQ(session->num_cooperators(), 1u);

  // No fusion ever touches this vehicle again; the sweep timer alone must
  // release the aged package.
  svc.PumpTimers(12.0);
  EXPECT_EQ(session->num_cooperators(), 0u);
  EXPECT_EQ(session->stats().packages_expired, 1u);
}

// --- Load harness: the determinism contract ---

LoadConfig SmallLoad() {
  LoadConfig cfg = MakeLoadConfig();
  cfg.lidar = TinyLidar();
  cfg.seed = 11;
  cfg.vehicles = 6;
  cfg.cooperators = 2;
  cfg.arrival_hz = 10.0;
  cfg.horizon_s = 0.11;  // two windows per vehicle
  return cfg;
}

TEST(LoadHarnessTest, RunCompletesFusionsForEveryVehicle) {
  const LoadReport report = RunLoad(SmallLoad());
  EXPECT_EQ(report.windows, 12u);
  EXPECT_GT(report.fusions, 0u);
  EXPECT_EQ(report.deadline_missed, 0u);
  EXPECT_GT(report.frames_delivered, 0u);
  EXPECT_GT(report.exchanges_admitted, 0u);
  EXPECT_EQ(report.vehicles.size(), 6u);
  for (const auto& [id, state] : report.vehicles) {
    EXPECT_GE(state.fusions, 1u) << "vehicle " << id;
    EXPECT_NE(state.last_digest, 0u) << "vehicle " << id;
  }
  EXPECT_GT(report.virtual_p99_ms, 0.0);
}

TEST(LoadHarnessTest, EventStreamIsIdenticalAcrossThreadsAndShards) {
  LoadConfig base = SmallLoad();
  replay::TraceWriter trace;
  const LoadReport recorded = RunLoad(base, &trace);
  ASSERT_GT(recorded.events, 0u);

  // Same trace, re-run under every {threads} x {shards} corner the contract
  // names: the event stream must match bit for bit (shard field excluded).
  for (const auto& [threads, shards] : std::vector<std::pair<int, int>>{
           {1, 4}, {4, 1}, {4, 4}}) {
    VerifyOverrides ov;
    ov.threads = threads;
    ov.shards = shards;
    const auto verdict = VerifyLoadTrace(trace.bytes(), ov);
    ASSERT_TRUE(verdict.ok()) << verdict.status().message();
    EXPECT_EQ(verdict->mismatches, 0u)
        << "threads=" << threads << " shards=" << shards;
    EXPECT_TRUE(verdict->digest_match);
    EXPECT_EQ(verdict->events_compared, recorded.events);
    EXPECT_EQ(verdict->rerun.event_digest, recorded.event_digest);
    // Per-vehicle outcomes agree too, not just the stream.
    for (const auto& [id, state] : recorded.vehicles) {
      const auto it = verdict->rerun.vehicles.find(id);
      ASSERT_NE(it, verdict->rerun.vehicles.end());
      EXPECT_EQ(it->second.chained_digest, state.chained_digest);
      EXPECT_EQ(it->second.fusions, state.fusions);
    }
  }
}

TEST(LoadHarnessTest, VerifyRejectsCorruptTrace) {
  LoadConfig base = SmallLoad();
  base.vehicles = 2;
  base.horizon_s = 0.01;
  replay::TraceWriter trace;
  (void)RunLoad(base, &trace);
  std::vector<std::uint8_t> bytes = trace.bytes();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-stream
  const auto verdict = VerifyLoadTrace(bytes);
  EXPECT_FALSE(verdict.ok());  // CRC framing catches it as DATA_LOSS
}

}  // namespace
}  // namespace cooper::serve
