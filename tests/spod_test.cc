#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/lidar.h"
#include "sim/scene.h"
#include "spod/clustering.h"
#include "spod/confidence.h"
#include "spod/detector.h"

namespace cooper::spod {
namespace {

// --- Clustering ---

pc::PointCloud GridPatch(double cx, double cy, double half, double step,
                         double z = 0.5) {
  pc::PointCloud cloud;
  for (double x = cx - half; x <= cx + half; x += step) {
    for (double y = cy - half; y <= cy + half; y += step) {
      cloud.Add({x, y, z}, 0.5f);
    }
  }
  return cloud;
}

TEST(ClusteringTest, SeparatedPatchesFormTwoClusters) {
  pc::PointCloud cloud = GridPatch(0, 0, 1.0, 0.25);
  cloud.Merge(GridPatch(10, 0, 1.0, 0.25));
  const auto clusters = ClusterPoints(cloud, 0.9, 5);
  ASSERT_EQ(clusters.size(), 2u);
}

TEST(ClusteringTest, NearbyPatchesMerge) {
  pc::PointCloud cloud = GridPatch(0, 0, 1.0, 0.25);
  cloud.Merge(GridPatch(2.5, 0, 1.0, 0.25));  // 0.5 m gap < radius
  const auto clusters = ClusterPoints(cloud, 0.9, 5);
  ASSERT_EQ(clusters.size(), 1u);
}

TEST(ClusteringTest, SmallClustersDiscarded) {
  pc::PointCloud cloud;
  cloud.Add({0, 0, 0}, 0.0f);
  cloud.Add({0.1, 0, 0}, 0.0f);
  cloud.Merge(GridPatch(20, 0, 1.0, 0.25));
  const auto clusters = ClusterPoints(cloud, 0.9, 5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_GT(clusters[0].points.size(), 5u);
}

TEST(ClusteringTest, EmptyCloudYieldsNoClusters) {
  EXPECT_TRUE(ClusterPoints(pc::PointCloud{}, 0.9, 5).empty());
}

TEST(ClusteringTest, DeterministicOrder) {
  pc::PointCloud cloud = GridPatch(5, 5, 1.0, 0.3);
  cloud.Merge(GridPatch(-5, -5, 1.0, 0.3));
  const auto a = ClusterPoints(cloud, 0.9, 5);
  const auto b = ClusterPoints(cloud, 0.9, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].points.size(), b[i].points.size());
  }
}

TEST(ClusteringTest, ZDoesNotSplitClusters) {
  // BEV clustering: a tall object is one cluster.
  pc::PointCloud cloud;
  for (double z = 0.0; z < 2.0; z += 0.1) {
    cloud.Add({0, 0, z}, 0.5f);
    cloud.Add({0.3, 0.0, z}, 0.5f);
  }
  EXPECT_EQ(ClusterPoints(cloud, 0.9, 5).size(), 1u);
}

void ExpectClustersIdentical(const std::vector<Cluster>& a,
                             const std::vector<Cluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].points.size(), b[i].points.size()) << "cluster " << i;
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      EXPECT_EQ(a[i].points[p].position.x, b[i].points[p].position.x);
      EXPECT_EQ(a[i].points[p].position.y, b[i].points[p].position.y);
      EXPECT_EQ(a[i].points[p].position.z, b[i].points[p].position.z);
      EXPECT_EQ(a[i].points[p].reflectance, b[i].points[p].reflectance);
    }
  }
}

TEST(ClusteringTest, ScratchAndThreadCountDoNotChangeClusters) {
  pc::PointCloud cloud = GridPatch(0, 0, 2.0, 0.2);       // > 256 pts: grid path
  cloud.Merge(GridPatch(12, 4, 1.5, 0.2));
  cloud.Merge(GridPatch(-9, -7, 1.0, 0.2));
  ASSERT_GT(cloud.size(), 256u);
  const auto base = ClusterPoints(cloud, 0.9, 5);
  ClusterScratch scratch;
  for (const int threads : {1, 2, 5}) {
    ExpectClustersIdentical(base, ClusterPoints(cloud, 0.9, 5, threads));
    // Same scratch reused across calls and thread counts.
    ExpectClustersIdentical(base,
                            ClusterPoints(cloud, 0.9, 5, threads, &scratch));
  }
}

TEST(ClusteringTest, KdPathAgreesWithGridPathOnSharedStructure) {
  // Two patches close to the origin; the small cloud (k-d path, <= 256 pts)
  // and the same patches padded past 256 points with one distant extra patch
  // (grid path) must produce identical clusters for the shared structure.
  pc::PointCloud small = GridPatch(0, 0, 1.0, 0.25);      // 81 pts
  small.Merge(GridPatch(8, 2, 1.0, 0.25));                // 162 total
  ASSERT_LE(small.size(), 256u);
  pc::PointCloud large = small;
  large.Merge(GridPatch(60, 60, 1.5, 0.2));               // pushes past 256
  ASSERT_GT(large.size(), 256u);
  const auto small_clusters = ClusterPoints(small, 0.9, 5);
  const auto large_clusters = ClusterPoints(large, 0.9, 5);
  ASSERT_EQ(small_clusters.size(), 2u);
  ASSERT_EQ(large_clusters.size(), 3u);
  // Canonical order sorts by first-point position, so the shared clusters
  // occupy the same slots in both results (the padding patch sorts last).
  std::vector<Cluster> shared(large_clusters.begin(),
                              large_clusters.begin() + 2);
  ExpectClustersIdentical(small_clusters, shared);
}

// --- Box fitting ---

class BoxFitYawTest : public ::testing::TestWithParam<double> {};

TEST_P(BoxFitYawTest, RecoversOrientedRectangle) {
  const double yaw = geom::DegToRad(GetParam());
  pc::PointCloud cloud;
  // Dense rectangle outline 4 x 1.6, rotated by yaw.
  for (double lx = -2.0; lx <= 2.0; lx += 0.1) {
    for (double ly : {-0.8, 0.8}) {
      cloud.Add({lx * std::cos(yaw) - ly * std::sin(yaw),
                 lx * std::sin(yaw) + ly * std::cos(yaw), 0.7},
                0.5f);
    }
  }
  for (double ly = -0.8; ly <= 0.8; ly += 0.1) {
    for (double lx : {-2.0, 2.0}) {
      cloud.Add({lx * std::cos(yaw) - ly * std::sin(yaw),
                 lx * std::sin(yaw) + ly * std::cos(yaw), 0.7},
                0.5f);
    }
  }
  const geom::Box3 box = FitOrientedBox(cloud);
  EXPECT_NEAR(box.length, 4.0, 0.15);
  EXPECT_NEAR(box.width, 1.6, 0.15);
  // Yaw is recovered modulo 180 degrees (box symmetry).
  const double err = std::abs(geom::WrapAngle(box.yaw - yaw));
  EXPECT_LT(std::min(err, 3.14159265 - err), geom::DegToRad(4.0));
}

INSTANTIATE_TEST_SUITE_P(YawSweep, BoxFitYawTest,
                         ::testing::Values(0.0, 15.0, 30.0, 45.0, 60.0, 85.0,
                                           120.0, 170.0));

TEST(BoxFitTest, HeightFromZExtent) {
  pc::PointCloud cloud;
  for (int i = 0; i <= 12; ++i) cloud.Add({0, 0, 0.2 + 0.1 * i}, 0.5f);
  cloud.Add({1, 0, 0.2}, 0.5f);
  cloud.Add({0, 1, 0.2}, 0.5f);
  const geom::Box3 box = FitOrientedBox(cloud);
  EXPECT_NEAR(box.height, 1.2, 1e-6);
  EXPECT_NEAR(box.center.z, 0.8, 1e-6);
}

TEST(BoxFitTest, LengthIsAlwaysMajorAxis) {
  pc::PointCloud cloud = GridPatch(0, 0, 0.5, 0.1);
  for (double y = -3; y <= 3; y += 0.1) cloud.Add({0, y, 0.5}, 0.5f);
  const geom::Box3 box = FitOrientedBox(cloud);
  EXPECT_GE(box.length, box.width);
}

// --- Confidence model ---

SensorResolution DenseSensor() {
  return MakeSensorResolution(64, 2.0, -24.8, 1024);
}
SensorResolution SparseSensor() {
  return MakeSensorResolution(16, 15.0, -15.0, 1800);
}

TEST(ConfidenceTest, ExpectedPointsDecreaseWithRange) {
  const auto s = DenseSensor();
  EXPECT_GT(ExpectedPointsOnCar(10, s), ExpectedPointsOnCar(20, s));
  EXPECT_GT(ExpectedPointsOnCar(20, s), ExpectedPointsOnCar(40, s));
  EXPECT_EQ(ExpectedPointsOnCar(0, s), 0.0);
}

TEST(ConfidenceTest, DenseSensorExpectsMorePoints) {
  // HDL-64's elevation resolution is ~4.7x finer; the VLP-16 preset has a
  // finer azimuth step, so the net expectation gap is ~2.7x.
  EXPECT_GT(ExpectedPointsOnCar(20, DenseSensor()),
            2.0 * ExpectedPointsOnCar(20, SparseSensor()));
}

TEST(ConfidenceTest, ProjectedWidthOrientationDependence) {
  geom::Box3 side{{20, 0, 0}, 4.5, 1.8, 1.5, geom::DegToRad(90)};
  geom::Box3 nose{{20, 0, 0}, 4.5, 1.8, 1.5, 0.0};
  EXPECT_GT(ProjectedSilhouetteWidth(side), 4.0);   // broadside
  EXPECT_LT(ProjectedSilhouetteWidth(nose), 2.0);   // end-on
}

pc::PointCloud CarCluster(double range, int n) {
  pc::PointCloud cloud;
  Rng rng(42);
  for (int i = 0; i < n; ++i) {
    cloud.Add({range + rng.Uniform(-0.2, 0.2), rng.Uniform(-2.2, 2.2),
               rng.Uniform(0.1, 1.4)},
              0.5f);
  }
  return cloud;
}

TEST(ConfidenceTest, MorePointsNeverLowerScore) {
  const auto sensor = SparseSensor();
  const geom::Box3 box{{20, 0, 0.75}, 4.5, 1.8, 1.5, geom::DegToRad(90)};
  double prev = 0.0;
  for (const int n : {5, 10, 20, 40, 80, 160}) {
    const auto f = ComputeEvidence(CarCluster(20, n), box.Expanded(0.3), sensor);
    const double s = ScoreFromEvidence(f);
    EXPECT_GE(s + 1e-9, prev) << "n=" << n;
    prev = s;
  }
}

TEST(ConfidenceTest, FullyVisibleCarScoresHigh) {
  const auto sensor = DenseSensor();
  const geom::Box3 box{{15, 0, 0.75}, 4.5, 1.8, 1.5, geom::DegToRad(90)};
  const int n = static_cast<int>(ExpectedPointsOnCar(15, sensor));
  const auto f = ComputeEvidence(CarCluster(15, n), box.Expanded(0.3), sensor);
  EXPECT_GT(ScoreFromEvidence(f), 0.7);
}

TEST(ConfidenceTest, SparseEvidenceFallsBelowThreshold) {
  const auto sensor = DenseSensor();
  const geom::Box3 box{{15, 0, 0.75}, 4.5, 1.8, 1.5, geom::DegToRad(90)};
  const auto f = ComputeEvidence(CarCluster(15, 8), box.Expanded(0.3), sensor);
  EXPECT_LT(ScoreFromEvidence(f), 0.5);
}

TEST(ConfidenceTest, ScoreIsBounded) {
  const auto sensor = SparseSensor();
  const geom::Box3 box{{5, 0, 0.75}, 4.5, 1.8, 1.5, 0.0};
  const auto f = ComputeEvidence(CarCluster(5, 5000), box.Expanded(0.3), sensor);
  const double s = ScoreFromEvidence(f);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(ConfidenceTest, EvidenceFeaturesPopulated) {
  const auto sensor = DenseSensor();
  const geom::Box3 box{{15, 0, 0.75}, 4.5, 1.8, 1.5, geom::DegToRad(90)};
  const auto f = ComputeEvidence(CarCluster(15, 100), box.Expanded(0.3), sensor);
  EXPECT_EQ(f.num_points, 100u);
  EXPECT_GT(f.visibility, 0.0);
  EXPECT_GT(f.coverage, 0.3);
  EXPECT_GT(f.height_extent, 0.8);
}

// --- Detector end-to-end ---

pc::PointCloud ScanScene(const sim::Scene& scene, int beams,
                         std::uint64_t seed = 5) {
  sim::LidarConfig cfg = beams >= 32 ? sim::Hdl64Config() : sim::Vlp16Config();
  cfg.azimuth_steps = beams >= 32 ? 720 : 1200;
  Rng rng(seed);
  return sim::LidarSimulator(cfg).Scan(scene, geom::Pose::Identity(), rng);
}

SpodDetector DenseDetector() {
  SpodConfig cfg = MakeDenseSpodConfig();
  return SpodDetector(cfg, MakeSensorResolution(64, 2.0, -24.8, 720));
}

TEST(DetectorTest, DetectsIsolatedCar) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, 2, 0}, 30.0), 0.6);
  const auto result = DenseDetector().Detect(ScanScene(scene, 64));
  ASSERT_GE(result.detections.size(), 1u);
  const auto& d = result.detections[0];
  EXPECT_NEAR(d.box.center.x, 12.0, 1.5);
  EXPECT_NEAR(d.box.center.y, 2.0, 1.5);
  EXPECT_GT(d.score, 0.5);
}

TEST(DetectorTest, RejectsLongWall) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kWall, sim::MakeWallBox({15, 0, 0}, 90.0, 30.0));
  const auto result = DenseDetector().Detect(ScanScene(scene, 64));
  for (const auto& d : result.detections) {
    EXPECT_LT(d.score, 0.5) << "wall scored as car at ("
                            << d.box.center.x << "," << d.box.center.y << ")";
  }
}

TEST(DetectorTest, EmptyCloudYieldsNoDetections) {
  const auto result = DenseDetector().Detect(pc::PointCloud{});
  EXPECT_TRUE(result.detections.empty());
  EXPECT_EQ(result.num_voxels, 0u);
}

TEST(DetectorTest, NanPointsAreTolerated) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, 0, 0}, 0.0), 0.6);
  pc::PointCloud cloud = ScanScene(scene, 64);
  cloud.Add({std::nan(""), 0, 0}, 0.0f);
  cloud.Add({0, std::numeric_limits<double>::infinity(), 0}, 0.5f);
  const auto result = DenseDetector().Detect(cloud);
  EXPECT_GE(result.detections.size(), 1u);
}

TEST(DetectorTest, TwoSeparateCarsTwoDetections) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, 5, 0}, 0.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, -5, 0}, 0.0), 0.6);
  const auto result = DenseDetector().Detect(ScanScene(scene, 64));
  int good = 0;
  for (const auto& d : result.detections) good += d.score >= 0.5 ? 1 : 0;
  EXPECT_EQ(good, 2);
}

TEST(DetectorTest, NmsSuppressesOverlaps) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({10, 0, 0}, 0.0), 0.6);
  const auto result = DenseDetector().Detect(ScanScene(scene, 64));
  for (std::size_t i = 0; i < result.detections.size(); ++i) {
    for (std::size_t j = i + 1; j < result.detections.size(); ++j) {
      EXPECT_LE(geom::BevIou(result.detections[i].box, result.detections[j].box),
                0.1 + 1e-9);
    }
  }
}

TEST(DetectorTest, SparseConfigDetectsOn16Beam) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({10, 1, 0}, 45.0), 0.6);
  SpodConfig cfg = MakeSparseSpodConfig();
  cfg.spherical.rows = 32;
  const SpodDetector detector(cfg, MakeSensorResolution(16, 15.0, -15.0, 1200));
  const auto result = detector.Detect(ScanScene(scene, 16));
  ASSERT_GE(result.detections.size(), 1u);
  EXPECT_GT(result.detections[0].score, 0.5);
}

TEST(DetectorTest, DeterministicResults) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({14, -3, 0}, 10.0), 0.6);
  const pc::PointCloud cloud = ScanScene(scene, 64);
  const auto a = DenseDetector().Detect(cloud);
  const auto b = DenseDetector().Detect(cloud);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.detections[i].score, b.detections[i].score);
  }
}

TEST(DetectorTest, ScratchReuseIsBitIdentical) {
  // Warm scratch (second and later frames on one instance), cold scratch
  // (fresh instance per call) and scratch reuse disabled must all produce
  // bit-identical detections, at one thread and several.
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, 2, 0}, 30.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({16, -5, 0}, 75.0), 0.6);
  const pc::PointCloud cloud = ScanScene(scene, 64);
  const auto base = DenseDetector().Detect(cloud);
  ASSERT_FALSE(base.detections.empty());

  auto expect_same = [&](const SpodResult& r, const char* what) {
    ASSERT_EQ(r.detections.size(), base.detections.size()) << what;
    for (std::size_t i = 0; i < base.detections.size(); ++i) {
      const auto& a = base.detections[i];
      const auto& b = r.detections[i];
      EXPECT_EQ(a.score, b.score) << what << " det " << i;
      EXPECT_EQ(a.num_points, b.num_points) << what << " det " << i;
      EXPECT_EQ(a.box.center.x, b.box.center.x) << what << " det " << i;
      EXPECT_EQ(a.box.center.y, b.box.center.y) << what << " det " << i;
      EXPECT_EQ(a.box.center.z, b.box.center.z) << what << " det " << i;
      EXPECT_EQ(a.box.length, b.box.length) << what << " det " << i;
      EXPECT_EQ(a.box.width, b.box.width) << what << " det " << i;
      EXPECT_EQ(a.box.height, b.box.height) << what << " det " << i;
      EXPECT_EQ(a.box.yaw, b.box.yaw) << what << " det " << i;
    }
  };

  const SpodDetector warm = DenseDetector();
  expect_same(warm.Detect(cloud), "warm frame 1");
  expect_same(warm.Detect(cloud), "warm frame 2");  // rulebook cache hit path
  expect_same(warm.Detect(cloud), "warm frame 3");

  SpodConfig no_reuse = MakeDenseSpodConfig();
  no_reuse.reuse_scratch = false;
  const SpodDetector cold(no_reuse, MakeSensorResolution(64, 2.0, -24.8, 720));
  expect_same(cold.Detect(cloud), "reuse off");

  SpodConfig threaded = MakeDenseSpodConfig();
  threaded.num_threads = 4;
  const SpodDetector par(threaded, MakeSensorResolution(64, 2.0, -24.8, 720));
  expect_same(par.Detect(cloud), "4 threads frame 1");
  expect_same(par.Detect(cloud), "4 threads frame 2");
}

TEST(DetectorTest, TimingsArePopulated) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({10, 0, 0}, 0.0), 0.6);
  const auto result = DenseDetector().Detect(ScanScene(scene, 64));
  EXPECT_GT(result.timings.voxelize_us, 0.0);
  EXPECT_GT(result.timings.vfe_us, 0.0);
  EXPECT_GT(result.timings.middle_us, 0.0);
  EXPECT_GT(result.timings.rpn_us, 0.0);
  EXPECT_GT(result.timings.TotalUs(), result.timings.rpn_us);
  EXPECT_GT(result.num_voxels, 0u);
}

TEST(DetectorTest, DensifyIsNoOpForDenseConfig) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({10, 0, 0}, 0.0), 0.6);
  const pc::PointCloud cloud = ScanScene(scene, 64);
  const SpodDetector detector = DenseDetector();
  EXPECT_EQ(detector.Densify(cloud).size(), cloud.size());
}

TEST(DetectorTest, DensifyAddsPointsForSparseConfig) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({8, 0, 0}, 90.0), 0.6);
  SpodConfig cfg = MakeSparseSpodConfig();
  const SpodDetector detector(cfg, MakeSensorResolution(16, 15.0, -15.0, 1200));
  const pc::PointCloud cloud = ScanScene(scene, 16);
  EXPECT_GT(detector.Densify(cloud).size(), cloud.size());
}

TEST(DetectorTest, MergedCloudsRaiseScore) {
  // The core SPOD property Cooper relies on: two viewpoints' worth of points
  // on the same car yield a score at least as high as either alone.
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({14, 0, 0}, 90.0), 0.6);
  sim::LidarConfig cfg = sim::Hdl64Config();
  cfg.azimuth_steps = 720;
  Rng rng(9);
  const auto front = sim::LidarSimulator(cfg).Scan(
      scene, geom::Pose::FromGpsImu({0, 0, 0}, {0, 0, 0}), rng);
  const auto back_pose = geom::Pose::FromGpsImu({28, 0, 0}, {geom::DegToRad(180), 0, 0});
  const auto back = sim::LidarSimulator(cfg).Scan(scene, back_pose, rng);

  const SpodDetector detector = DenseDetector();
  const auto single = detector.Detect(front);
  pc::PointCloud fused = front;
  fused.Merge(back.Transformed(geom::Pose::Between(
      geom::Pose(geom::Mat3::Identity(), {0, 0, cfg.sensor_height}),
      back_pose * geom::Pose(geom::Mat3::Identity(), {0, 0, cfg.sensor_height}))));
  const auto coop = detector.DetectPreprocessed(fused);

  ASSERT_FALSE(single.detections.empty());
  ASSERT_FALSE(coop.detections.empty());
  EXPECT_GE(coop.detections[0].score + 0.05, single.detections[0].score);
  EXPECT_GT(coop.detections[0].num_points, single.detections[0].num_points);
}

}  // namespace
}  // namespace cooper::spod
