#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "pointcloud/voxel_grid.h"

namespace cooper::common {
namespace {

struct IdentityHash {
  std::size_t operator()(int k) const { return static_cast<std::size_t>(k); }
};

// Mixed hash for the fuzz suite, so probe runs stay short.
struct MixHash {
  std::size_t operator()(int k) const {
    std::uint64_t h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<int, int, MixHash> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_FALSE(m.Erase(7));
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int, std::string, MixHash> m;
  auto [v1, inserted1] = m.TryEmplace(1, "one");
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, "one");
  auto [v2, inserted2] = m.TryEmplace(1, "uno");
  EXPECT_FALSE(inserted2);  // existing value untouched
  EXPECT_EQ(*v2, "one");
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), "one");
  EXPECT_TRUE(m.Contains(1));
  EXPECT_FALSE(m.Contains(2));
  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(1), nullptr);
}

TEST(FlatMapTest, OperatorBracketInsertsDefault) {
  FlatMap<int, int, MixHash> m;
  m[5] = 50;
  EXPECT_EQ(m[5], 50);
  EXPECT_EQ(m[6], 0);  // default-inserted
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMapTest, GrowsThroughRehash) {
  FlatMap<int, int, MixHash> m;
  for (int i = 0; i < 1000; ++i) m[i] = i * 3;
  EXPECT_EQ(m.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i * 3);
  }
  EXPECT_EQ(m.Find(1000), nullptr);
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<int, int, MixHash> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  const std::size_t cap = m.capacity();
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.Find(5), nullptr);
  for (int i = 0; i < 100; ++i) m[i] = i;  // refill without growth
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<int, int, MixHash> m;
  m.Reserve(500);
  const std::size_t cap = m.capacity();
  for (int i = 0; i < 500; ++i) m[i] = i;
  EXPECT_EQ(m.capacity(), cap);
}

// Backward-shift deletion must keep colliding probe runs reachable — the
// identity hash forces every key into the same cluster.
TEST(FlatMapTest, EraseBackwardShiftKeepsCollidersReachable) {
  FlatMap<int, int, IdentityHash> m;
  // Keys 16, 32, 48 all land on slot 0 of a 16-slot table.
  m[16] = 1;
  m[32] = 2;
  m[48] = 3;
  ASSERT_EQ(m.capacity(), 16u);
  EXPECT_TRUE(m.Erase(16));
  ASSERT_NE(m.Find(32), nullptr);
  EXPECT_EQ(*m.Find(32), 2);
  ASSERT_NE(m.Find(48), nullptr);
  EXPECT_EQ(*m.Find(48), 3);
  EXPECT_TRUE(m.Erase(32));
  ASSERT_NE(m.Find(48), nullptr);
  EXPECT_EQ(*m.Find(48), 3);
}

TEST(FlatMapTest, EraseClusterWrappingTableEnd) {
  FlatMap<int, int, IdentityHash> m;
  // Home slot 15 of a 16-slot table: the probe run wraps to slot 0.
  m[15] = 1;
  m[31] = 2;
  m[47] = 3;
  ASSERT_EQ(m.capacity(), 16u);
  EXPECT_TRUE(m.Erase(15));
  EXPECT_EQ(*m.Find(31), 2);
  EXPECT_EQ(*m.Find(47), 3);
}

TEST(FlatMapTest, ForEachVisitsEveryEntryOnce) {
  FlatMap<int, int, MixHash> m;
  for (int i = 0; i < 37; ++i) m[i] = i;
  std::vector<bool> seen(37, false);
  m.ForEach([&](const int& k, const int& v) {
    EXPECT_EQ(k, v);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 37);
    EXPECT_FALSE(seen[static_cast<std::size_t>(k)]);
    seen[static_cast<std::size_t>(k)] = true;
  });
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(FlatMapTest, VoxelCoordKeys) {
  FlatMap<pc::VoxelCoord, std::uint32_t, pc::VoxelCoordHash> m;
  for (std::int32_t x = -5; x < 5; ++x) {
    for (std::int32_t y = -5; y < 5; ++y) {
      m[{x, y, 0}] = static_cast<std::uint32_t>((x + 5) * 10 + (y + 5));
    }
  }
  EXPECT_EQ(m.size(), 100u);
  ASSERT_NE(m.Find({-5, 4, 0}), nullptr);
  EXPECT_EQ(*m.Find({-5, 4, 0}), 9u);
  EXPECT_EQ(m.Find({-5, 4, 1}), nullptr);
}

// Erasing while scanning the table: backward-shift deletion moves entries
// from the following probe run into the vacated slot, so a scan that erases
// as it goes must never lose sight of a survivor.  The identity hash packs
// all keys into one cluster (worst case for the shift), and the second pass
// runs the same scan over a cluster that wraps the table end.
TEST(FlatMapTest, EraseDuringScanKeepsSurvivorsReachable) {
  for (const int home : {0, 13}) {  // 13: cluster wraps a 16-slot table
    FlatMap<int, int, IdentityHash> m;
    std::unordered_map<int, int> oracle;
    for (int i = 0; i < 8; ++i) {
      const int key = home + 16 * i;  // all collide onto slot `home`
      m[key] = i;
      oracle[key] = i;
    }
    ASSERT_EQ(m.capacity(), 16u);
    // Scan in slot order, erasing every other visited key — the shift
    // relocates later cluster members under the scan's feet.
    std::vector<int> scan_order;
    m.ForEach([&](const int& k, const int&) { scan_order.push_back(k); });
    bool erase_this = true;
    for (const int key : scan_order) {
      if (erase_this) {
        EXPECT_TRUE(m.Erase(key));
        oracle.erase(key);
        // Invariant after every single shift: all survivors stay findable
        // with their values, nothing resurrects.
        for (const auto& [k, v] : oracle) {
          const int* found = m.Find(k);
          ASSERT_NE(found, nullptr) << "home " << home << " lost key " << k;
          EXPECT_EQ(*found, v);
        }
        EXPECT_EQ(m.Find(key), nullptr);
      }
      erase_this = !erase_this;
    }
    EXPECT_EQ(m.size(), oracle.size());
  }
}

// Clear() must retain the slot array so per-frame scratch maps never
// reallocate, and the cleared table must behave exactly like a fresh one.
// Fuzz-checked: random churn, periodic Clear, capacity pinned after warmup.
TEST(FlatMapFuzzTest, ClearThenReinsertKeepsCapacityAndMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 1871 + 5);
    FlatMap<int, int, MixHash> map;
    std::unordered_map<int, int> oracle;
    map.Reserve(256);  // frame-sized scratch; churn below stays within it
    const std::size_t cap = map.capacity();
    for (int step = 0; step < 3000; ++step) {
      const double op = rng.Uniform();
      if (op < 0.02) {
        map.Clear();
        oracle.clear();
        ASSERT_EQ(map.capacity(), cap) << "seed " << seed;
        ASSERT_TRUE(map.empty());
      } else if (op < 0.55) {
        const int key = static_cast<int>(rng.Uniform(-100.0, 100.0));
        const int value = static_cast<int>(rng.Uniform(0.0, 1000.0));
        const auto [slot, inserted] = map.TryEmplace(key, value);
        const auto [it, oracle_inserted] = oracle.try_emplace(key, value);
        ASSERT_EQ(inserted, oracle_inserted) << "seed " << seed;
        ASSERT_EQ(*slot, it->second) << "seed " << seed;
      } else if (op < 0.8) {
        const int key = static_cast<int>(rng.Uniform(-100.0, 100.0));
        ASSERT_EQ(map.Erase(key), oracle.erase(key) > 0) << "seed " << seed;
      } else {
        const int key = static_cast<int>(rng.Uniform(-100.0, 100.0));
        const int* found = map.Find(key);
        const auto it = oracle.find(key);
        ASSERT_EQ(found != nullptr, it != oracle.end()) << "seed " << seed;
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
      }
    }
    // Keys span [-100, 100) and Reserve(256) covers that: the scratch map
    // must never have grown past its warmup capacity.
    ASSERT_EQ(map.capacity(), cap) << "seed " << seed;
    ASSERT_EQ(map.size(), oracle.size()) << "seed " << seed;
    for (const auto& [k, v] : oracle) {
      const int* found = map.Find(k);
      ASSERT_NE(found, nullptr) << "seed " << seed << " key " << k;
      ASSERT_EQ(*found, v);
    }
  }
}

// Fuzz: random insert/erase/lookup churn against a std::unordered_map
// oracle, including rehash boundaries and negative keys.
TEST(FlatMapFuzzTest, MatchesUnorderedMapOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 977 + 11);
    FlatMap<int, int, MixHash> map;
    std::unordered_map<int, int> oracle;
    for (int step = 0; step < 4000; ++step) {
      const int key = static_cast<int>(rng.Uniform(-200.0, 200.0));
      const double op = rng.Uniform();
      if (op < 0.45) {
        const int value = static_cast<int>(rng.Uniform(0.0, 1000.0));
        const auto [slot, inserted] = map.TryEmplace(key, value);
        const auto [it, oracle_inserted] = oracle.try_emplace(key, value);
        ASSERT_EQ(inserted, oracle_inserted) << "seed " << seed;
        ASSERT_EQ(*slot, it->second) << "seed " << seed;
      } else if (op < 0.7) {
        ASSERT_EQ(map.Erase(key), oracle.erase(key) > 0) << "seed " << seed;
      } else if (op < 0.95) {
        const int* found = map.Find(key);
        const auto it = oracle.find(key);
        ASSERT_EQ(found != nullptr, it != oracle.end()) << "seed " << seed;
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
      } else {
        ASSERT_EQ(map.size(), oracle.size()) << "seed " << seed;
      }
    }
    // Final sweep: identical contents, both directions.
    ASSERT_EQ(map.size(), oracle.size()) << "seed " << seed;
    for (const auto& [k, v] : oracle) {
      const int* found = map.Find(k);
      ASSERT_NE(found, nullptr) << "seed " << seed << " key " << k;
      ASSERT_EQ(*found, v);
    }
    std::size_t visited = 0;
    map.ForEach([&](const int& k, const int& v) {
      ++visited;
      const auto it = oracle.find(k);
      ASSERT_NE(it, oracle.end()) << "seed " << seed << " key " << k;
      ASSERT_EQ(v, it->second);
    });
    ASSERT_EQ(visited, oracle.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cooper::common
