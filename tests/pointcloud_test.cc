#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "pointcloud/codec.h"
#include "pointcloud/io.h"
#include "pointcloud/point_cloud.h"
#include "pointcloud/spherical_projection.h"
#include "pointcloud/voxel_grid.h"

namespace cooper::pc {
namespace {

PointCloud RandomCloud(std::size_t n, Rng& rng, double extent = 50.0) {
  PointCloud cloud;
  cloud.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cloud.Add({rng.Uniform(-extent, extent), rng.Uniform(-extent, extent),
               rng.Uniform(-2.0, 3.0)},
              static_cast<float>(rng.Uniform()));
  }
  return cloud;
}

// --- PointCloud basics ---

TEST(PointCloudTest, BasicAccessors) {
  PointCloud c;
  EXPECT_TRUE(c.empty());
  c.Add({1, 2, 3}, 0.5f);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].position.x, 1.0);
  EXPECT_FLOAT_EQ(c[0].reflectance, 0.5f);
}

TEST(PointCloudTest, TransformAppliesRigidMotion) {
  PointCloud c;
  c.Add({1, 0, 0}, 0.0f);
  c.Transform(geom::Pose(geom::Rz(geom::DegToRad(90)), {0, 0, 5}));
  EXPECT_NEAR(c[0].position.x, 0.0, 1e-12);
  EXPECT_NEAR(c[0].position.y, 1.0, 1e-12);
  EXPECT_NEAR(c[0].position.z, 5.0, 1e-12);
}

TEST(PointCloudTest, TransformedLeavesOriginalUntouched) {
  PointCloud c;
  c.Add({1, 0, 0}, 0.0f);
  const PointCloud t = c.Transformed(geom::Pose(geom::Mat3::Identity(), {9, 0, 0}));
  EXPECT_DOUBLE_EQ(c[0].position.x, 1.0);
  EXPECT_DOUBLE_EQ(t[0].position.x, 10.0);
}

TEST(PointCloudTest, MergeConcatenates) {
  Rng rng(1);
  PointCloud a = RandomCloud(100, rng);
  const PointCloud b = RandomCloud(50, rng);
  a.Merge(b);
  EXPECT_EQ(a.size(), 150u);
  EXPECT_DOUBLE_EQ(a[100].position.x, b[0].position.x);
}

TEST(PointCloudTest, CropBoxKeepsOnlyInside) {
  PointCloud c;
  c.Add({0, 0, 0}, 0.0f);
  c.Add({5, 0, 0}, 0.0f);
  const geom::Box3 box{{0, 0, 0}, 2, 2, 2, 0};
  EXPECT_EQ(c.CropBox(box).size(), 1u);
}

TEST(PointCloudTest, AzimuthSectorFilter) {
  PointCloud c;
  c.Add({1, 0, 0}, 0.0f);     // 0 deg
  c.Add({0, 1, 0}, 0.0f);     // 90 deg
  c.Add({-1, 0, 0}, 0.0f);    // 180 deg
  const PointCloud front = c.FilterAzimuthSector(0.0, geom::DegToRad(60));
  EXPECT_EQ(front.size(), 1u);
  const PointCloud left = c.FilterAzimuthSector(geom::DegToRad(90), geom::DegToRad(10));
  EXPECT_EQ(left.size(), 1u);
  EXPECT_DOUBLE_EQ(left[0].position.y, 1.0);
}

TEST(PointCloudTest, AzimuthSectorWrapsAroundPi) {
  PointCloud c;
  c.Add({-1, 0.01, 0}, 0.0f);   // ~180 deg
  c.Add({-1, -0.01, 0}, 0.0f);  // ~-180 deg
  const PointCloud rear = c.FilterAzimuthSector(geom::DegToRad(180), geom::DegToRad(5));
  EXPECT_EQ(rear.size(), 2u);
}

TEST(PointCloudTest, RangeFilter) {
  PointCloud c;
  c.Add({1, 0, 10}, 0.0f);
  c.Add({30, 0, -5}, 0.0f);
  EXPECT_EQ(c.FilterRange(0, 5).size(), 1u);   // z ignored in ground range
  EXPECT_EQ(c.FilterRange(5, 100).size(), 1u);
}

TEST(PointCloudTest, MinZFilter) {
  PointCloud c;
  c.Add({0, 0, -1}, 0.0f);
  c.Add({0, 0, 1}, 0.0f);
  EXPECT_EQ(c.FilterMinZ(0.0).size(), 1u);
}

TEST(PointCloudTest, RemoveInvalidDropsNanAndInf) {
  PointCloud c;
  c.Add({0, 0, 0}, 0.0f);
  c.Add({std::numeric_limits<double>::quiet_NaN(), 0, 0}, 0.0f);
  c.Add({0, std::numeric_limits<double>::infinity(), 0}, 0.0f);
  c.Add({1, 1, 1}, std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(c.RemoveInvalid(), 3u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(PointCloudTest, BoundsComputed) {
  PointCloud c;
  c.Add({-1, 5, 0}, 0.0f);
  c.Add({3, -2, 7}, 0.0f);
  const auto [lo, hi] = c.Bounds();
  EXPECT_DOUBLE_EQ(lo.x, -1);
  EXPECT_DOUBLE_EQ(lo.y, -2);
  EXPECT_DOUBLE_EQ(hi.z, 7);
}

TEST(PointCloudTest, CountInBox) {
  Rng rng(3);
  const PointCloud c = RandomCloud(1000, rng, 10.0);
  const geom::Box3 box{{0, 0, 0.5}, 4, 4, 5, 0.3};
  std::size_t manual = 0;
  for (const auto& p : c) manual += box.Contains(p.position) ? 1 : 0;
  EXPECT_EQ(c.CountInBox(box), manual);
}

// --- Fusion (Eq. 2-3) ---

TEST(FusionTest, FuseCloudsAlignsWorldPoints) {
  // A world point observed by two vehicles must land at the same coordinates
  // in the receiver frame after fusion.
  const geom::Vec3 world{12, -5, 1};
  const geom::Pose rx = geom::Pose::FromGpsImu({2, 3, 0}, {0.4, 0, 0});
  const geom::Pose tx = geom::Pose::FromGpsImu({-7, 9, 0}, {-1.1, 0, 0});
  PointCloud rx_cloud, tx_cloud;
  rx_cloud.Add(rx.Inverse() * world, 0.1f);
  tx_cloud.Add(tx.Inverse() * world, 0.2f);

  const PointCloud fused = FuseClouds(rx_cloud, tx_cloud, rx, tx);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_NEAR(fused[0].position.x, fused[1].position.x, 1e-9);
  EXPECT_NEAR(fused[0].position.y, fused[1].position.y, 1e-9);
  EXPECT_NEAR(fused[0].position.z, fused[1].position.z, 1e-9);
}

TEST(FusionTest, PointCountConserved) {
  Rng rng(4);
  const PointCloud a = RandomCloud(123, rng);
  const PointCloud b = RandomCloud(77, rng);
  const PointCloud fused = FuseClouds(a, b, geom::Pose::Identity(),
                                      geom::Pose::Identity());
  EXPECT_EQ(fused.size(), 200u);
}

TEST(FusionTest, IdentityPosesArePlainUnion) {
  PointCloud a, b;
  a.Add({1, 1, 1}, 0.0f);
  b.Add({2, 2, 2}, 0.0f);
  const PointCloud fused = FuseClouds(a, b, geom::Pose::Identity(),
                                      geom::Pose::Identity());
  EXPECT_DOUBLE_EQ(fused[1].position.x, 2.0);
}

// --- Voxel grid ---

TEST(VoxelGridTest, GroupsPointsByVoxel) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 10};
  cfg.voxel_size = {1, 1, 1};
  PointCloud c;
  c.Add({0.5, 0.5, 0.5}, 0.0f);
  c.Add({0.6, 0.4, 0.5}, 0.0f);  // same voxel
  c.Add({5.5, 5.5, 5.5}, 0.0f);  // different voxel
  const VoxelGrid grid(c, cfg);
  EXPECT_EQ(grid.voxels().size(), 2u);
  EXPECT_EQ(grid.voxels()[0].point_indices.size(), 2u);
}

TEST(VoxelGridTest, OutOfBoundsPointsIgnored) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {1, 1, 1};
  cfg.voxel_size = {1, 1, 1};
  PointCloud c;
  c.Add({-5, 0.5, 0.5}, 0.0f);
  c.Add({0.5, 0.5, 0.5}, 0.0f);
  EXPECT_EQ(VoxelGrid(c, cfg).voxels().size(), 1u);
}

TEST(VoxelGridTest, MaxPointsPerVoxelCap) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {1, 1, 1};
  cfg.voxel_size = {1, 1, 1};
  cfg.max_points_per_voxel = 3;
  PointCloud c;
  for (int i = 0; i < 10; ++i) c.Add({0.5, 0.5, 0.5}, 0.0f);
  EXPECT_EQ(VoxelGrid(c, cfg).voxels()[0].point_indices.size(), 3u);
}

TEST(VoxelGridTest, GridShapeCeils) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 4.5, 3};
  cfg.voxel_size = {2, 2, 2};
  const VoxelGrid grid(PointCloud{}, cfg);
  const auto shape = grid.GridShape();
  EXPECT_EQ(shape.x, 5);
  EXPECT_EQ(shape.y, 3);
  EXPECT_EQ(shape.z, 2);
}

TEST(VoxelGridTest, VoxelCenterGeometry) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 10};
  cfg.voxel_size = {2, 2, 2};
  const VoxelGrid grid(PointCloud{}, cfg);
  const auto c = grid.VoxelCenter({1, 0, 2});
  EXPECT_DOUBLE_EQ(c.x, 3.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
  EXPECT_DOUBLE_EQ(c.z, 5.0);
}

TEST(VoxelGridTest, FindLocatesVoxelOfPoint) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 10};
  cfg.voxel_size = {1, 1, 1};
  PointCloud c;
  c.Add({2.5, 3.5, 4.5}, 0.0f);
  const VoxelGrid grid(c, cfg);
  ASSERT_NE(grid.Find({2.7, 3.2, 4.9}), nullptr);
  EXPECT_EQ(grid.Find({9.5, 9.5, 9.5}), nullptr);
  EXPECT_EQ(grid.Find({-1, 0, 0}), nullptr);
}

TEST(VoxelGridTest, OccupancyFractionSane) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 10};
  cfg.voxel_size = {1, 1, 1};
  PointCloud c;
  c.Add({0.5, 0.5, 0.5}, 0.0f);
  EXPECT_NEAR(VoxelGrid(c, cfg).Occupancy(), 1.0 / 1000.0, 1e-12);
}

TEST(VoxelGridTest, DownsampleAveragesVoxelPoints) {
  VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 10};
  cfg.voxel_size = {1, 1, 1};
  PointCloud c;
  c.Add({0.25, 0.5, 0.5}, 0.2f);
  c.Add({0.75, 0.5, 0.5}, 0.4f);
  const PointCloud down = VoxelGrid(c, cfg).Downsample(c);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_NEAR(down[0].position.x, 0.5, 1e-12);
  EXPECT_NEAR(down[0].reflectance, 0.3f, 1e-6);
}

// --- Spherical projection ---

SphericalProjectionConfig SmallProjection() {
  SphericalProjectionConfig cfg;
  cfg.rows = 16;
  cfg.cols = 90;
  cfg.fov_up_deg = 15.0;
  cfg.fov_down_deg = -15.0;
  return cfg;
}

TEST(RangeImageTest, ProjectsPointToExpectedPixel) {
  RangeImage img(SmallProjection());
  PointCloud c;
  c.Add({10, 0, 0}, 0.5f);  // azimuth 0, elevation 0 -> middle of the image
  img.Project(c);
  int valid = 0;
  for (int r = 0; r < img.rows(); ++r) {
    for (int col = 0; col < img.cols(); ++col) {
      if (img.At(r, col).valid) {
        ++valid;
        EXPECT_NEAR(img.At(r, col).range, 10.0f, 1e-4);
        EXPECT_EQ(col, img.cols() / 2);  // azimuth 0 in [-180, 180)
        EXPECT_EQ(r, img.rows() / 2);    // elevation 0 at mid FOV
      }
    }
  }
  EXPECT_EQ(valid, 1);
}

TEST(RangeImageTest, KeepsNearestPerPixel) {
  RangeImage img(SmallProjection());
  PointCloud c;
  c.Add({10, 0, 0}, 0.1f);
  c.Add({5, 0, 0}, 0.9f);  // same direction, nearer
  img.Project(c);
  EXPECT_NEAR(img.At(img.rows() / 2, img.cols() / 2).range, 5.0f, 1e-4);
  EXPECT_FLOAT_EQ(img.At(img.rows() / 2, img.cols() / 2).reflectance, 0.9f);
}

TEST(RangeImageTest, OutOfFovIgnored) {
  RangeImage img(SmallProjection());
  PointCloud c;
  c.Add({1, 0, 10}, 0.0f);  // elevation ~84 deg, outside +-15
  img.Project(c);
  EXPECT_DOUBLE_EQ(img.Fill(), 0.0);
}

TEST(RangeImageTest, BackProjectionPreservesValidPoints) {
  Rng rng(5);
  RangeImage img(SmallProjection());
  PointCloud c;
  for (int i = 0; i < 500; ++i) {
    const double az = rng.Uniform(-3.1, 3.1);
    const double el = rng.Uniform(-0.25, 0.25);
    const double r = rng.Uniform(2.0, 50.0);
    c.Add({r * std::cos(el) * std::cos(az), r * std::cos(el) * std::sin(az),
           r * std::sin(el)},
          0.5f);
  }
  img.Project(c);
  const PointCloud back = img.ToPointCloud();
  // One point per valid pixel, each exactly equal to some input point.
  std::size_t valid = 0;
  for (int r = 0; r < img.rows(); ++r)
    for (int col = 0; col < img.cols(); ++col) valid += img.At(r, col).valid;
  EXPECT_EQ(back.size(), valid);
  EXPECT_GT(back.size(), 100u);
}

TEST(RangeImageTest, DensifyFillsSupportedHoles) {
  RangeImage img(SmallProjection());
  // Fill a full block except one centre pixel by hand.
  for (int r = 5; r <= 9; ++r) {
    for (int c = 20; c <= 24; ++c) {
      if (r == 7 && c == 22) continue;
      auto& px = img.At(r, c);
      px.valid = true;
      px.range = 10.0f;
      px.x = 10.0f;
    }
  }
  EXPECT_FALSE(img.At(7, 22).valid);
  img.Densify(1);
  EXPECT_TRUE(img.At(7, 22).valid);
  EXPECT_NEAR(img.At(7, 22).range, 10.0f, 1e-5);
}

TEST(RangeImageTest, DensifyLeavesUnsupportedHoles) {
  RangeImage img(SmallProjection());
  auto& px = img.At(3, 3);  // a single isolated valid pixel
  px.valid = true;
  px.range = 5.0f;
  img.Densify(2);
  // Neighbours have at most one valid neighbour each -> not filled.
  EXPECT_FALSE(img.At(3, 4).valid);
  EXPECT_FALSE(img.At(2, 3).valid);
}

TEST(DecimateBeamsTest, ReducesDensityByFactor) {
  Rng rng(6);
  SphericalProjectionConfig cfg;
  cfg.rows = 64;
  cfg.cols = 512;
  cfg.fov_up_deg = 2.0;
  cfg.fov_down_deg = -24.8;
  PointCloud c;
  for (int i = 0; i < 20000; ++i) {
    const double az = rng.Uniform(-3.1, 3.1);
    const double el = rng.Uniform(geom::DegToRad(-24.0), geom::DegToRad(1.5));
    const double r = rng.Uniform(2.0, 60.0);
    c.Add({r * std::cos(el) * std::cos(az), r * std::cos(el) * std::sin(az),
           r * std::sin(el)},
          0.5f);
  }
  const PointCloud thin = DecimateBeams(c, 4, cfg);
  const double ratio = static_cast<double>(thin.size()) / c.size();
  EXPECT_NEAR(ratio, 0.25, 0.05);  // keeps every 4th beam row
  EXPECT_EQ(DecimateBeams(c, 1, cfg).size(), c.size());
}

// --- KITTI I/O ---

TEST(IoTest, BytesRoundTrip) {
  Rng rng(7);
  const PointCloud c = RandomCloud(257, rng);
  const auto bytes = ToKittiBytes(c);
  EXPECT_EQ(bytes.size(), 257u * 16u);
  const auto back = FromKittiBytes(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(back.value()[i].position.x, c[i].position.x, 1e-4);
    EXPECT_FLOAT_EQ(back.value()[i].reflectance, c[i].reflectance);
  }
}

TEST(IoTest, TruncatedBytesRejected) {
  std::vector<std::uint8_t> bytes(15, 0);
  EXPECT_EQ(FromKittiBytes(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(IoTest, FileRoundTrip) {
  Rng rng(8);
  const PointCloud c = RandomCloud(100, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cooper_io_test.bin").string();
  ASSERT_TRUE(WriteKittiBin(path, c).ok());
  const auto back = ReadKittiBin(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 100u);
  std::filesystem::remove(path);
}

TEST(IoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadKittiBin("/nonexistent/nope.bin").status().code(),
            StatusCode::kNotFound);
}

// --- Codec ---

class CodecResolutionTest : public ::testing::TestWithParam<double> {};

TEST_P(CodecResolutionTest, RoundTripWithinResolution) {
  const double res = GetParam();
  Rng rng(9);
  const PointCloud c = RandomCloud(500, rng);
  const CloudCodec codec(CodecConfig{res, true});
  const auto back = CloudCodec::Decode(codec.Encode(c));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(back.value()[i].position.x, c[i].position.x, res * 0.51);
    EXPECT_NEAR(back.value()[i].position.y, c[i].position.y, res * 0.51);
    EXPECT_NEAR(back.value()[i].position.z, c[i].position.z, res * 0.51);
    EXPECT_NEAR(back.value()[i].reflectance, c[i].reflectance, 1.0 / 255.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, CodecResolutionTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1));

TEST(CodecTest, NonDeltaModeRoundTrips) {
  Rng rng(10);
  const PointCloud c = RandomCloud(200, rng);
  const CloudCodec codec(CodecConfig{0.01, false});
  const auto back = CloudCodec::Decode(codec.Encode(c));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 200u);
}

TEST(CodecTest, EmptyCloudRoundTrips) {
  const CloudCodec codec;
  const auto back = CloudCodec::Decode(codec.Encode(PointCloud{}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(CodecTest, CompressesVsRawLayout) {
  // Scan-ordered points delta-encode well; expect at least ~2x over the raw
  // 16-byte layout.
  PointCloud c;
  for (int i = 0; i < 5000; ++i) {
    const double az = 0.002 * i;
    c.Add({20 * std::cos(az), 20 * std::sin(az), -1.5}, 0.3f);
  }
  EXPECT_GT(CompressionRatio(c), 2.0);
}

TEST(CodecTest, BadMagicRejected) {
  std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(CloudCodec::Decode(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(CodecTest, TruncationRejectedAtEveryPrefix) {
  Rng rng(11);
  const PointCloud c = RandomCloud(20, rng);
  const auto bytes = CloudCodec().Encode(c);
  // Every strict prefix must fail cleanly (never crash, never succeed).
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(CloudCodec::Decode(prefix).ok()) << "prefix " << cut;
  }
}

TEST(CodecTest, EncodedSizeMatchesEncode) {
  Rng rng(12);
  const PointCloud c = RandomCloud(321, rng);
  const CloudCodec codec;
  EXPECT_EQ(codec.EncodedSize(c), codec.Encode(c).size());
}

// --- VoxelCoordHash ---

// The open-addressing tables index with `hash & (capacity - 1)`, so the LOW
// bits must already be well mixed for the dense, small-magnitude coordinate
// blocks a voxel grid produces.  Hash a 32x32x16 block (16384 coords) into
// the bucket count a FlatMap would use and require near-uniform occupancy.
TEST(VoxelCoordHashTest, DenseBlockSpreadsAcrossLowBitBuckets) {
  constexpr std::size_t kBuckets = 32768;  // 2 * 16384, power of two
  std::vector<int> load(kBuckets, 0);
  VoxelCoordHash hash;
  std::size_t n = 0;
  for (std::int32_t z = 0; z < 16; ++z) {
    for (std::int32_t y = -16; y < 16; ++y) {
      for (std::int32_t x = -16; x < 16; ++x) {
        ++load[hash({x, y, z}) & (kBuckets - 1)];
        ++n;
      }
    }
  }
  ASSERT_EQ(n, 16384u);
  int max_load = 0;
  std::size_t occupied = 0;
  for (const int l : load) {
    max_load = std::max(max_load, l);
    occupied += l > 0;
  }
  // A uniform random throw of 16384 balls into 32768 bins occupies ~39% of
  // bins with a max load of ~5; a hash that leaks coordinate structure into
  // the low bits collapses to a few hundred buckets with huge piles.
  EXPECT_GE(occupied, kBuckets / 4) << "low bits are not mixing";
  EXPECT_LE(max_load, 8);
}

TEST(VoxelCoordHashTest, AxisShiftsChangeTheHash) {
  VoxelCoordHash hash;
  const std::size_t base = hash({5, -3, 2});
  EXPECT_NE(base, hash({6, -3, 2}));
  EXPECT_NE(base, hash({5, -2, 2}));
  EXPECT_NE(base, hash({5, -3, 3}));
  // Swapping axes must not collide either (the pack is asymmetric).
  EXPECT_NE(hash({1, 2, 3}), hash({2, 1, 3}));
  EXPECT_NE(hash({1, 2, 3}), hash({1, 3, 2}));
}

}  // namespace
}  // namespace cooper::pc
