// Record/replay trace format, golden replay and differential conformance.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "replay/conformance.h"
#include "replay/golden.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "replay/trace.h"

namespace cooper::replay {
namespace {

#ifndef COOPER_TEST_DATA_DIR
#define COOPER_TEST_DATA_DIR "tests/data"
#endif

TraceConfig SmallConfig() {
  TraceConfig config;
  config.name = "unit";
  config.lidar.beams = 16;
  config.lidar.azimuth_steps = 128;
  config.scan_seed = 7;
  return config;
}

pc::PointCloud SmallCloud() {
  pc::PointCloud cloud;
  cloud.Add({1.0, 2.0, 3.0}, 0.5f);
  cloud.Add({-4.5, 0.25, 1.75}, 0.125f);
  cloud.Add({10.0, -10.0, 0.0}, 1.0f);
  return cloud;
}

// --- Format round trips ---

TEST(TraceFormat, HeaderRoundTrip) {
  TraceWriter writer;
  TraceReader reader(writer.bytes());
  ASSERT_TRUE(reader.ReadHeader().ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(TraceFormat, ConfigRoundTrip) {
  TraceConfig config = SmallConfig();
  config.max_cooperators = 3;
  config.cache_reconstructions = false;
  config.rulebook_cache = false;
  config.num_threads = 4;
  config.faults.drop_prob = 0.25;
  config.fault_seed = 99;

  TraceWriter writer;
  writer.AppendConfig(config);
  TraceReader reader(writer.bytes());
  ASSERT_TRUE(reader.ReadHeader().ok());
  auto record = reader.Next();
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->tag, RecordTag::kConfig);
  auto decoded = DecodeConfig(record->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "unit");
  EXPECT_EQ(decoded->lidar.beams, 16);
  EXPECT_EQ(decoded->lidar.azimuth_steps, 128);
  EXPECT_EQ(decoded->max_cooperators, 3u);
  EXPECT_FALSE(decoded->cache_reconstructions);
  EXPECT_FALSE(decoded->rulebook_cache);
  EXPECT_TRUE(decoded->reuse_scratch);
  EXPECT_EQ(decoded->num_threads, 4);
  EXPECT_DOUBLE_EQ(decoded->faults.drop_prob, 0.25);
  EXPECT_EQ(decoded->fault_seed, 99u);
  EXPECT_EQ(decoded->scan_seed, 7u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(TraceFormat, ScanRoundTripIsBitExact) {
  const pc::PointCloud cloud = SmallCloud();
  TraceWriter writer;
  writer.AppendScan(5, cloud);
  TraceReader reader(writer.bytes());
  ASSERT_TRUE(reader.ReadHeader().ok());
  auto record = reader.Next();
  ASSERT_TRUE(record.ok());
  auto decoded = DecodeScan(record->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first, 5u);
  ASSERT_EQ(decoded->second.size(), cloud.size());
  EXPECT_EQ(DigestCloud(decoded->second), DigestCloud(cloud));
}

TEST(TraceFormat, WireAndFaultAndDigestRoundTrip) {
  TraceWriter writer;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 255, 0, 42};
  writer.AppendWireFrame(1.5, bytes);
  writer.AppendWirePackage(2.5, bytes);
  FaultEventRecord fe;
  fe.frame_index = 9;
  fe.flags = kFaultDuplicated | kFaultReordered;
  fe.deliveries = 2;
  fe.extra_delay_ms[1] = 12.5;
  writer.AppendFaultEvent(fe);
  StepDigest sd;
  sd.timestamp_s = 10.0;
  sd.num_detections = 2;
  sd.detections_digest = 0xdeadbeefcafef00dull;
  sd.fused_points = 1234;
  sd.fused_digest = 42;
  sd.num_voxels = 77;
  sd.transmitter_points = 56;
  writer.AppendStepDigest(sd);
  EndRecord end;
  end.step_count = 1;
  end.combined_digest = 0xabcdull;
  writer.AppendEnd(end);

  TraceReader reader(writer.bytes());
  ASSERT_TRUE(reader.ReadHeader().ok());

  auto frame = reader.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->tag, RecordTag::kWireFrame);
  auto wire = DecodeWireBytes(frame->payload);
  ASSERT_TRUE(wire.ok());
  EXPECT_DOUBLE_EQ(wire->first, 1.5);
  EXPECT_EQ(wire->second, bytes);

  auto package = reader.Next();
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package->tag, RecordTag::kWirePackage);

  auto fault = reader.Next();
  ASSERT_TRUE(fault.ok());
  auto fe2 = DecodeFaultEvent(fault->payload);
  ASSERT_TRUE(fe2.ok());
  EXPECT_EQ(fe2->frame_index, 9u);
  EXPECT_EQ(fe2->flags, kFaultDuplicated | kFaultReordered);
  EXPECT_EQ(fe2->deliveries, 2u);
  EXPECT_DOUBLE_EQ(fe2->extra_delay_ms[1], 12.5);

  auto digest = reader.Next();
  ASSERT_TRUE(digest.ok());
  auto sd2 = DecodeStepDigest(digest->payload);
  ASSERT_TRUE(sd2.ok());
  EXPECT_EQ(sd2->detections_digest, sd.detections_digest);
  EXPECT_EQ(sd2->fused_points, sd.fused_points);
  EXPECT_EQ(sd2->num_voxels, sd.num_voxels);

  auto endr = reader.Next();
  ASSERT_TRUE(endr.ok());
  auto end2 = DecodeEnd(endr->payload);
  ASSERT_TRUE(end2.ok());
  EXPECT_EQ(end2->step_count, 1u);
  EXPECT_EQ(end2->combined_digest, 0xabcdull);
  EXPECT_TRUE(reader.AtEnd());
}

// --- Defensive decoding ---

TEST(TraceFormat, RejectsBadMagicVersionAndFlags) {
  TraceWriter writer;
  std::vector<std::uint8_t> image = writer.bytes();
  {
    auto bad = image;
    bad[0] ^= 0xff;
    TraceReader reader(bad);
    EXPECT_EQ(reader.ReadHeader().code(), StatusCode::kDataLoss);
  }
  {
    auto bad = image;
    bad[4] = 0xfe;  // version
    TraceReader reader(bad);
    EXPECT_EQ(reader.ReadHeader().code(), StatusCode::kDataLoss);
  }
  {
    auto bad = image;
    bad[6] = 1;  // flags
    TraceReader reader(bad);
    EXPECT_EQ(reader.ReadHeader().code(), StatusCode::kDataLoss);
  }
  {
    std::vector<std::uint8_t> tiny(image.begin(), image.begin() + 3);
    TraceReader reader(tiny);
    EXPECT_EQ(reader.ReadHeader().code(), StatusCode::kDataLoss);
  }
}

TEST(TraceFormat, RejectsCorruptRecords) {
  TraceWriter writer;
  writer.AppendWireFrame(1.0, {10, 20, 30});
  const std::vector<std::uint8_t>& good = writer.bytes();

  {  // flipped payload byte -> CRC mismatch
    auto bad = good;
    bad[kTraceHeaderBytes + 6] ^= 0x01;
    TraceReader reader(bad);
    ASSERT_TRUE(reader.ReadHeader().ok());
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
  }
  {  // unknown tag
    auto bad = good;
    bad[kTraceHeaderBytes] = 0x7f;
    TraceReader reader(bad);
    ASSERT_TRUE(reader.ReadHeader().ok());
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
  }
  {  // truncated mid-record
    std::vector<std::uint8_t> bad(good.begin(), good.end() - 5);
    TraceReader reader(bad);
    ASSERT_TRUE(reader.ReadHeader().ok());
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
  }
  {  // length field inflated past the buffer
    auto bad = good;
    bad[kTraceHeaderBytes + 1] = 0xff;
    bad[kTraceHeaderBytes + 2] = 0xff;
    TraceReader reader(bad);
    ASSERT_TRUE(reader.ReadHeader().ok());
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
  }
}

TEST(TraceFormat, ScanCountMustAgreeWithPayload) {
  TraceWriter writer;
  writer.AppendScan(0, SmallCloud());
  TraceReader reader(writer.bytes());
  ASSERT_TRUE(reader.ReadHeader().ok());
  auto record = reader.Next();
  ASSERT_TRUE(record.ok());
  // Inflate the claimed point count: the decoder must refuse before
  // allocating, not over-read.
  record->payload[4] = 0xff;
  record->payload[5] = 0xff;
  record->payload[6] = 0xff;
  EXPECT_EQ(DecodeScan(record->payload).status().code(), StatusCode::kDataLoss);
}

// --- Digests ---

TEST(TraceDigest, SensitiveToEveryDetectionField) {
  spod::Detection d;
  d.box.center = {1.0, 2.0, 0.5};
  d.box.length = 4.0;
  d.box.width = 1.8;
  d.box.height = 1.5;
  d.box.yaw = 0.3;
  d.score = 0.9;
  d.num_points = 50;
  const std::uint64_t base = DigestDetections({d});

  auto flipped = d;
  flipped.score = std::nextafter(d.score, 1.0);  // one ulp
  EXPECT_NE(DigestDetections({flipped}), base);
  flipped = d;
  flipped.box.center.x = std::nextafter(d.box.center.x, 2.0);
  EXPECT_NE(DigestDetections({flipped}), base);
  flipped = d;
  flipped.num_points = 51;
  EXPECT_NE(DigestDetections({flipped}), base);
  flipped = d;
  flipped.cls = spod::ObjectClass::kPedestrian;
  EXPECT_NE(DigestDetections({flipped}), base);

  EXPECT_NE(DigestDetections({d, d}), base);  // count matters
  EXPECT_EQ(DigestDetections({d}), base);     // and it is a pure function
}

TEST(TraceDigest, CloudDigestIsOrderSensitive) {
  pc::PointCloud a = SmallCloud();
  pc::PointCloud b;
  b.Add(a[1].position, a[1].reflectance);
  b.Add(a[0].position, a[0].reflectance);
  b.Add(a[2].position, a[2].reflectance);
  EXPECT_NE(DigestCloud(a), DigestCloud(b));
}

// --- ParseTrace structural validation ---

TEST(ParseTrace, RejectsStructuralViolations) {
  {  // no records at all
    TraceWriter writer;
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
  {  // first record not config
    TraceWriter writer;
    writer.AppendWireFrame(1.0, {1});
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
  {  // missing end record
    TraceWriter writer;
    writer.AppendConfig(SmallConfig());
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
  {  // detect without digest
    TraceWriter writer;
    writer.AppendConfig(SmallConfig());
    writer.AppendScan(0, SmallCloud());
    writer.AppendDetect(DetectRecord{10.0, 0, {}});
    writer.AppendEnd(EndRecord{1, 0});
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
  {  // detect referencing an unknown scan
    TraceWriter writer;
    writer.AppendConfig(SmallConfig());
    writer.AppendDetect(DetectRecord{10.0, 3, {}});
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
  {  // end step count disagrees
    TraceWriter writer;
    writer.AppendConfig(SmallConfig());
    writer.AppendEnd(EndRecord{2, 0});
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
  {  // records after end
    TraceWriter writer;
    writer.AppendConfig(SmallConfig());
    writer.AppendEnd(EndRecord{0, 0});
    writer.AppendWireFrame(1.0, {1});
    EXPECT_EQ(ParseTrace(writer.bytes()).status().code(),
              StatusCode::kDataLoss);
  }
}

// --- Golden record -> replay, in memory ---

class GoldenReplayTest : public ::testing::Test {
 protected:
  static Trace RecordAndParse(const std::string& name) {
    auto bytes = RecordGolden(name);
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto trace = ParseTrace(*bytes);
    EXPECT_TRUE(trace.ok()) << trace.status().ToString();
    return std::move(trace).value();
  }
};

TEST_F(GoldenReplayTest, FreshTJunctionRecordingReplaysBitIdentically) {
  const Trace trace = RecordAndParse("tj2");
  EXPECT_EQ(trace.end.step_count, 2u);
  EXPECT_EQ(trace.scans.size(), 1u);  // two steps share one ego scan
  const ReplayResult replay = Replay(trace);
  ASSERT_EQ(replay.steps.size(), 2u);
  EXPECT_TRUE(replay.matches_golden);
  for (const StepOutcome& step : replay.steps) {
    EXPECT_TRUE(step.matches_golden);
    EXPECT_GT(step.computed.fused_points, 0u);
    EXPECT_GT(step.computed.transmitter_points, 0u);
  }
  // The cooperator's package made it through the frame path.
  EXPECT_GE(replay.session_stats.packages_accepted, 1u);
}

TEST_F(GoldenReplayTest, RecordingIsADeterministicFunctionOfTheSeeds) {
  auto first = RecordGolden("tj2");
  auto second = RecordGolden("tj2");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // byte-identical, not merely equivalent
}

TEST_F(GoldenReplayTest, LossyRecordingCapturesFaultsAndReplays) {
  const Trace trace = RecordAndParse("lossy4");
  EXPECT_EQ(trace.end.step_count, 2u);
  EXPECT_FALSE(trace.fault_events.empty());
  bool any_fault = false;
  for (const auto& fe : trace.fault_events) any_fault |= fe.flags != 0;
  EXPECT_TRUE(any_fault);

  const ReplayResult replay = Replay(trace);
  EXPECT_TRUE(replay.matches_golden);
  // Several cooperators survived the lossy channel.
  EXPECT_GE(replay.session_stats.packages_accepted, 2u);
}

TEST_F(GoldenReplayTest, SmokeMatrixIsBitIdenticalOnFreshTJunction) {
  const Trace trace = RecordAndParse("tj2");
  const ConformanceReport report = RunConformance(trace, SmokeMatrix(4));
  EXPECT_TRUE(report.baseline.matches_golden);
  EXPECT_TRUE(report.all_identical);
  EXPECT_TRUE(report.all_match_golden);
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.identical_to_baseline) << CellName(cell.cell) << ": "
                                            << FormatDiff(*cell.diff);
  }
}

// --- Committed golden files ---

TEST_F(GoldenReplayTest, CommittedGoldenFilesReplayBitIdentically) {
  for (const GoldenCase& gc : GoldenCases()) {
    const std::string path =
        std::string(COOPER_TEST_DATA_DIR) + "/" + gc.filename;
    auto bytes = ReadTraceFile(path);
    ASSERT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString();
    auto trace = ParseTrace(*bytes);
    ASSERT_TRUE(trace.ok()) << path << ": " << trace.status().ToString();
    const ReplayResult replay = Replay(*trace);
    EXPECT_TRUE(replay.matches_golden) << path;
    EXPECT_EQ(replay.steps.size(), trace->end.step_count) << path;
  }
}

TEST_F(GoldenReplayTest, CommittedGoldenFilesMatchFreshRecordings) {
  // The committed bytes must be exactly what the recorder produces today —
  // any pipeline change that shifts one output bit shows up here.
  for (const GoldenCase& gc : GoldenCases()) {
    const std::string path =
        std::string(COOPER_TEST_DATA_DIR) + "/" + gc.filename;
    auto committed = ReadTraceFile(path);
    ASSERT_TRUE(committed.ok()) << path;
    auto fresh = RecordGolden(gc.name);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(*committed, *fresh) << gc.name
                                  << ": regenerate with cooper_replay record";
  }
}

// --- Differential diff machinery ---

TEST(DiffReplays, PinpointsFirstDivergingFloat) {
  StepOutcome step;
  step.computed.fused_points = 100;
  step.computed.num_voxels = 10;
  step.computed.transmitter_points = 40;
  spod::Detection d;
  d.box.center = {1.0, 2.0, 0.5};
  d.score = 0.75;
  step.detections = {d, d};
  step.computed.num_detections = 2;
  step.computed.detections_digest = DigestDetections(step.detections);

  ReplayResult baseline;
  baseline.steps = {step, step};

  ReplayResult cell = baseline;
  cell.steps[1].detections[1].box.center.y =
      std::nextafter(d.box.center.y, 3.0);
  cell.steps[1].computed.detections_digest =
      DigestDetections(cell.steps[1].detections);

  const auto diff = DiffReplays(baseline, cell);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff->step, 1u);
  EXPECT_EQ(diff->stage, "detect");
  EXPECT_EQ(diff->field, "detections[1].box.center.y");
  EXPECT_EQ(diff->baseline_value, d.box.center.y);
  EXPECT_NE(diff->baseline_bits, diff->cell_bits);

  EXPECT_FALSE(DiffReplays(baseline, baseline).has_value());
}

TEST(DiffReplays, EarlierStageWins) {
  StepOutcome step;
  step.computed.fused_points = 100;
  ReplayResult baseline;
  baseline.steps = {step};
  ReplayResult cell = baseline;
  cell.steps[0].computed.transmitter_points = 1;  // reconstruct stage
  cell.steps[0].computed.fused_points = 99;       // merge stage
  const auto diff = DiffReplays(baseline, cell);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff->stage, "reconstruct");
}

TEST(Matrix, ShapesAndNames) {
  EXPECT_EQ(FullMatrix(4).size(), 36u);
  EXPECT_EQ(SmokeMatrix(4).size(), 7u);
  MatrixCell cell;
  cell.num_threads = 4;
  cell.cache_reconstructions = false;
  EXPECT_EQ(CellName(cell), "t4,nocache,reuse,noobs,rulebook,auto");
  // Sticky observability: every obs=off cell must precede every obs=on one.
  bool seen_obs = false;
  for (const MatrixCell& c : FullMatrix(4)) {
    if (c.observability) seen_obs = true;
    EXPECT_TRUE(!seen_obs || c.observability);
  }
}

}  // namespace
}  // namespace cooper::replay
