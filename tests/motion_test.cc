#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/motion.h"
#include "sim/lidar.h"
#include "sim/scene.h"

namespace cooper::pc {
namespace {

// --- EgoMotion kinematics ---

TEST(EgoMotionTest, StationaryIsIdentity) {
  const EgoMotion still{0.0, 0.0};
  const geom::Pose p = still.PoseAt(0.5);
  EXPECT_NEAR(p.translation().Norm(), 0.0, 1e-12);
}

TEST(EgoMotionTest, StraightLineMotion) {
  const EgoMotion motion{10.0, 0.0};
  const geom::Pose p = motion.PoseAt(0.1);
  EXPECT_NEAR(p.translation().x, 1.0, 1e-12);
  EXPECT_NEAR(p.translation().y, 0.0, 1e-12);
}

TEST(EgoMotionTest, ConstantTwistArc) {
  // Quarter circle: v = r * w; after t = (pi/2)/w the vehicle is at (r, r).
  const double w = 0.5, r = 8.0;
  const EgoMotion motion{r * w, w};
  const double t = (3.141592653589793 / 2.0) / w;
  const geom::Pose p = motion.PoseAt(t);
  EXPECT_NEAR(p.translation().x, r, 1e-9);
  EXPECT_NEAR(p.translation().y, r, 1e-9);
  // Heading rotated 90 degrees.
  const geom::Vec3 heading = p.RotateOnly({1, 0, 0});
  EXPECT_NEAR(heading.x, 0.0, 1e-9);
  EXPECT_NEAR(heading.y, 1.0, 1e-9);
}

TEST(EgoMotionTest, ArcConvergesToLineForSmallYawRate) {
  const EgoMotion arc{12.0, 1e-10};
  const EgoMotion line{12.0, 0.0};
  const geom::Pose pa = arc.PoseAt(0.1), pl = line.PoseAt(0.1);
  EXPECT_NEAR(pa.translation().x, pl.translation().x, 1e-6);
  EXPECT_NEAR(pa.translation().y, pl.translation().y, 1e-6);
}

// --- Deskew ---

TEST(DeskewTest, ZeroMotionIsIdentity) {
  PointCloud cloud;
  cloud.Add({3, 4, -1}, 0.5f);
  const PointCloud out = DeskewScan(cloud, EgoMotion{0.0, 0.0});
  EXPECT_NEAR(out[0].position.x, 3.0, 1e-12);
  EXPECT_NEAR(out[0].position.y, 4.0, 1e-12);
}

TEST(DeskewTest, AzimuthZeroPointUnmoved) {
  // A point at azimuth 0 was captured at t = 0 — no correction.
  PointCloud cloud;
  cloud.Add({10, 0, 0}, 0.5f);
  const PointCloud out = DeskewScan(cloud, EgoMotion{15.0, 0.2});
  EXPECT_NEAR(out[0].position.x, 10.0, 1e-9);
  EXPECT_NEAR(out[0].position.y, 0.0, 1e-9);
}

TEST(DeskewTest, LateAzimuthPointShiftedByTravel) {
  // A point just short of azimuth 2*pi was captured ~one revolution later;
  // at 10 m/s and T = 0.1 s the ego moved ~1 m forward, so the corrected
  // point shifts ~+1 m in x.
  PointCloud cloud;
  cloud.Add({10, -1e-6, 0}, 0.5f);  // azimuth ~ 2*pi - epsilon
  const PointCloud out = DeskewScan(cloud, EgoMotion{10.0, 0.0});
  EXPECT_NEAR(out[0].position.x, 11.0, 1e-3);
}

TEST(DeskewTest, MovingScanOfStaticWorldMatchesStaticScanAfterDeskew) {
  // The end-to-end property: scan a static scene while driving, deskew, and
  // compare against the instantaneous scan from the start pose.
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({15, 6, 0}, 40.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, -8, 0}, 150.0), 0.6);
  scene.AddObject(sim::ObjectClass::kWall, sim::MakeWallBox({25, 0, 0}, 90.0, 30.0), 0.3);

  sim::LidarConfig cfg = sim::Hdl64Config();
  cfg.azimuth_steps = 720;
  cfg.range_noise_stddev = 0.0;
  cfg.dropout_prob = 0.0;
  const sim::LidarSimulator lidar(cfg);
  const EgoMotion motion{12.0, 0.15};  // fast, turning

  Rng rng1(3), rng2(3);
  const PointCloud skewed =
      lidar.ScanMoving(scene, geom::Pose::Identity(), motion, rng1, 0.1);
  const PointCloud reference = lidar.Scan(scene, geom::Pose::Identity(), rng2);
  const PointCloud deskewed = DeskewScan(skewed, motion, 0.1);

  // Without correction the late-azimuth region is off by up to ~1.2 m; with
  // correction the cloud matches the reference geometry.  Compare via the
  // mean nearest-neighbour distance on the wall/car structure (z > -1).
  const KdTree ref_tree(reference.FilterMinZ(-1.0));
  auto mean_nn = [&](const PointCloud& cloud) {
    const PointCloud structure = cloud.FilterMinZ(-1.0);
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& p : structure) {
      const auto nn = ref_tree.Nearest(p.position);
      if (!nn) continue;
      sum += std::sqrt(nn->squared_distance);
      ++n;
    }
    return n > 0 ? sum / static_cast<double>(n) : 1e9;
  };
  const double skewed_err = mean_nn(skewed);
  const double deskewed_err = mean_nn(deskewed);
  EXPECT_GT(skewed_err, 0.2);           // motion smear is real
  EXPECT_LT(deskewed_err, 0.08);        // and the correction removes it
  EXPECT_LT(deskewed_err, skewed_err / 3.0);
}

TEST(DeskewTest, PointCountPreserved) {
  Rng rng(5);
  PointCloud cloud;
  for (int i = 0; i < 500; ++i) {
    const double az = rng.Uniform(0, 6.28);
    const double r = rng.Uniform(2, 40);
    cloud.Add({r * std::cos(az), r * std::sin(az), rng.Uniform(-1.5, 1.0)}, 0.4f);
  }
  EXPECT_EQ(DeskewScan(cloud, EgoMotion{20.0, 0.3}).size(), cloud.size());
}

}  // namespace
}  // namespace cooper::pc
