// Cross-module integration tests: full Cooper pipeline on library scenarios,
// checking the system-level invariants the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/stats.h"
#include "net/serialize.h"

namespace cooper {
namespace {

using eval::CaseOutcome;
using eval::ExperimentOptions;

const CaseOutcome& TJunctionOutcome() {
  static const CaseOutcome outcome = [] {
    const auto sc = sim::MakeKittiTJunction();
    return eval::RunCoopCase(sc, sc.cases[0]);
  }();
  return outcome;
}

const CaseOutcome& ParkingLotOutcome() {
  static const CaseOutcome outcome = [] {
    const auto sc = sim::MakeTjScenario(1);
    return eval::RunCoopCase(sc, sc.cases[0]);
  }();
  return outcome;
}

TEST(IntegrationTest, CooperDetectsAtLeastAsManyAsEitherSingle) {
  for (const auto* outcome : {&TJunctionOutcome(), &ParkingLotOutcome()}) {
    const auto s = eval::Summarize(*outcome);
    EXPECT_GE(s.detected_coop, s.detected_a) << outcome->scenario_name;
    EXPECT_GE(s.detected_coop, s.detected_b) << outcome->scenario_name;
  }
}

TEST(IntegrationTest, CooperExtendsSensingArea) {
  // Some targets are out of detection area for one viewpoint but in the
  // cooperative result — the paper's "extended sensing range" claim.
  const auto& outcome = TJunctionOutcome();
  int gained = 0;
  for (const auto& t : outcome.targets) {
    if (!t.in_range_b && t.in_range_a && t.detected_coop) ++gained;
    if (!t.in_range_a && t.in_range_b && t.detected_coop) ++gained;
  }
  EXPECT_GT(gained, 0);
}

TEST(IntegrationTest, CooperRecoversAtLeastOneMissedTarget) {
  // Objects missed by both single shots ("hard") get detected after fusion
  // somewhere in the scenario suite.  The long-baseline parking-lot case
  // (car1+car4) is where complementary coverage recovers hidden cars.
  const auto sc = sim::MakeTjScenario(1);
  const auto far_case = eval::RunCoopCase(sc, sc.cases[2]);
  int recovered = 0;
  for (const auto* outcome :
       {&TJunctionOutcome(), &ParkingLotOutcome(), &far_case}) {
    for (const auto& t : outcome->targets) {
      if (!t.detected_a && !t.detected_b && t.detected_coop) ++recovered;
    }
  }
  EXPECT_GT(recovered, 0);
}

TEST(IntegrationTest, FusedCloudIsUnionOfSingleShots) {
  const auto& outcome = ParkingLotOutcome();
  EXPECT_GT(outcome.points_a, 1000u);
  EXPECT_GT(outcome.points_b, 1000u);
  EXPECT_GT(outcome.result_coop.num_input_points,
            outcome.result_a.num_input_points);
}

TEST(IntegrationTest, RunCoopCaseIsDeterministic) {
  const auto sc = sim::MakeTjScenario(1);
  const auto a = eval::RunCoopCase(sc, sc.cases[0]);
  const auto b = eval::RunCoopCase(sc, sc.cases[0]);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.targets[i].score_a, b.targets[i].score_a);
    EXPECT_DOUBLE_EQ(a.targets[i].score_coop, b.targets[i].score_coop);
  }
  EXPECT_EQ(a.package_payload_bytes, b.package_payload_bytes);
}

TEST(IntegrationTest, SeedOffsetChangesScansButNotStory) {
  const auto sc = sim::MakeTjScenario(1);
  ExperimentOptions opt;
  opt.seed_offset = 1234;
  const auto alt = eval::RunCoopCase(sc, sc.cases[0], opt);
  const auto& base = ParkingLotOutcome();
  // Different noise draws -> different point counts; same coop dominance.
  const auto s_alt = eval::Summarize(alt);
  EXPECT_GE(s_alt.detected_coop, s_alt.detected_a);
  EXPECT_NE(alt.points_a, base.points_a);
}

TEST(IntegrationTest, GpsDriftWithinBoundsIsTolerated) {
  const auto sc = sim::MakeTjScenario(1);
  ExperimentOptions skewed;
  skewed.skew = sim::GpsSkewMode::kBothAxesMax;
  const auto drift = eval::RunCoopCase(sc, sc.cases[0], skewed);
  const auto& base = ParkingLotOutcome();
  const auto s_base = eval::Summarize(base);
  const auto s_drift = eval::Summarize(drift);
  // Fusion robustness (Fig. 10): drift at the bound costs at most one
  // detection in this scene.
  EXPECT_GE(s_drift.detected_coop, s_base.detected_coop - 1);
}

TEST(IntegrationTest, PerfectNavMatchesMeasuredNavClosely) {
  const auto sc = sim::MakeTjScenario(1);
  ExperimentOptions perfect;
  perfect.use_measured_nav = false;
  const auto ideal = eval::RunCoopCase(sc, sc.cases[0], perfect);
  const auto s_ideal = eval::Summarize(ideal);
  const auto s_measured = eval::Summarize(ParkingLotOutcome());
  EXPECT_LE(std::abs(s_ideal.detected_coop - s_measured.detected_coop), 1);
}

TEST(IntegrationTest, PackagePayloadSurvivesWireRoundTrip) {
  // Exchange package -> wire bytes -> package -> cloud, end to end.
  const auto sc = sim::MakeTjScenario(1);
  const auto cfg = eval::MakeCooperConfig(sc.lidar);
  const core::CooperPipeline pipeline(cfg);
  Rng rng(sc.seed);
  const sim::LidarSimulator lidar(sc.lidar);
  const auto cloud = lidar.Scan(sc.scene, sc.viewpoints[0].ToPose(), rng);
  const core::NavMetadata nav{sc.viewpoints[0].position,
                              sc.viewpoints[0].attitude,
                              {0, 0, sc.lidar.sensor_height}};
  const auto package = pipeline.MakePackage(1, 0.5, core::RoiCategory::kFullFrame,
                                            nav, cloud);
  const auto wire = net::SerializePackage(package);
  const auto back = net::DeserializePackage(wire);
  ASSERT_TRUE(back.ok());
  const auto decoded = core::DecodePackage(*back);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), cloud.size());
}

TEST(IntegrationTest, DetectionTimeOverheadIsBounded) {
  // Fig. 9's qualitative claim: Cooper costs more than single shot, but far
  // less than running the detector twice.
  const auto& outcome = ParkingLotOutcome();
  const double single_us = outcome.result_a.timings.TotalUs();
  const double coop_us = outcome.result_coop.timings.TotalUs();
  EXPECT_GT(coop_us, 0.8 * single_us);
  EXPECT_LT(coop_us, 4.0 * single_us);
}

TEST(IntegrationTest, DetectionIsThreadCountInvariant) {
  // The threading contract (DESIGN.md "Threading model"): every parallel hot
  // path chunks deterministically, so the full pipeline — simulation, codec,
  // reconstruction, fusion, detection — produces bit-identical output at any
  // thread count.
  const auto sc = sim::MakeTjScenario(1);
  const geom::Vec3 mount{0, 0, sc.lidar.sensor_height};
  auto run = [&](int threads) {
    sim::LidarConfig lidar_cfg = sc.lidar;
    lidar_cfg.num_threads = threads;
    core::CooperConfig cfg = eval::MakeCooperConfig(sc.lidar);
    cfg.num_threads = threads;
    const core::CooperPipeline pipeline(cfg);
    const sim::LidarSimulator lidar(lidar_cfg);
    Rng rng(sc.seed);
    const auto cloud_a = lidar.Scan(sc.scene, sc.viewpoints[0].ToPose(), rng);
    const auto cloud_b = lidar.Scan(sc.scene, sc.viewpoints[1].ToPose(), rng);
    const core::NavMetadata nav_a{sc.viewpoints[0].position,
                                  sc.viewpoints[0].attitude, mount};
    const core::NavMetadata nav_b{sc.viewpoints[1].position,
                                  sc.viewpoints[1].attitude, mount};
    const auto package = pipeline.MakePackage(
        2, 0.0, core::RoiCategory::kFullFrame, nav_b, cloud_b);
    return pipeline.DetectCooperative(cloud_a, nav_a, package);
  };
  const auto base = run(1);
  ASSERT_TRUE(base.ok());
  for (const int threads : {2, 8}) {
    const auto alt = run(threads);
    ASSERT_TRUE(alt.ok()) << threads;
    // The fused cloud must be point-for-point identical...
    ASSERT_EQ(alt->fused_cloud.size(), base->fused_cloud.size()) << threads;
    for (std::size_t i = 0; i < base->fused_cloud.size(); i += 97) {
      EXPECT_EQ(alt->fused_cloud[i].position.x, base->fused_cloud[i].position.x);
      EXPECT_EQ(alt->fused_cloud[i].position.y, base->fused_cloud[i].position.y);
      EXPECT_EQ(alt->fused_cloud[i].position.z, base->fused_cloud[i].position.z);
    }
    // ...and so must every detection box, score and support count.
    ASSERT_EQ(alt->fused.detections.size(), base->fused.detections.size())
        << threads;
    for (std::size_t i = 0; i < base->fused.detections.size(); ++i) {
      const auto& d = alt->fused.detections[i];
      const auto& e = base->fused.detections[i];
      EXPECT_EQ(d.box.center.x, e.box.center.x) << threads;
      EXPECT_EQ(d.box.center.y, e.box.center.y) << threads;
      EXPECT_EQ(d.box.length, e.box.length) << threads;
      EXPECT_EQ(d.box.width, e.box.width) << threads;
      EXPECT_EQ(d.box.height, e.box.height) << threads;
      EXPECT_EQ(d.box.yaw, e.box.yaw) << threads;
      EXPECT_EQ(d.score, e.score) << threads;
      EXPECT_EQ(d.cls, e.cls) << threads;
      EXPECT_EQ(d.num_points, e.num_points) << threads;
    }
  }
}

TEST(IntegrationTest, ScoresAreCalibratedlyBounded) {
  for (const auto* outcome : {&TJunctionOutcome(), &ParkingLotOutcome()}) {
    for (const auto& t : outcome->targets) {
      for (const double s : {t.score_a, t.score_b, t.score_coop}) {
        EXPECT_GE(s, 0.0);
        EXPECT_LT(s, 1.0);
      }
    }
  }
}

TEST(IntegrationTest, EveryScenarioHasPaperScaleTargets) {
  auto scenarios = sim::AllKittiScenarios();
  for (auto& s : sim::AllTjScenarios()) scenarios.push_back(s);
  for (const auto& sc : scenarios) {
    std::size_t cars = 0;
    for (const auto& o : sc.scene.objects()) {
      cars += o.cls == sim::ObjectClass::kCar ? 1 : 0;
    }
    EXPECT_GE(cars, 6u) << sc.name;   // Fig. 3/6 tables have 7-17 rows
    EXPECT_LE(cars, 24u) << sc.name;
  }
}

}  // namespace
}  // namespace cooper
