#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/background_map.h"
#include "sim/lidar.h"
#include "sim/scene.h"

namespace cooper::core {
namespace {

pc::PointCloud SinglePoint(double x, double y, double z) {
  pc::PointCloud c;
  c.Add({x, y, z}, 0.5f);
  return c;
}

TEST(BackgroundMapTest, EmptyMapHasNoBackground) {
  const BackgroundMap map;
  EXPECT_FALSE(map.IsBackground({0, 0, 0}));
  EXPECT_EQ(map.num_voxels(), 0u);
  EXPECT_EQ(map.num_traversals(), 0);
}

TEST(BackgroundMapTest, BecomesBackgroundAfterMinTraversals) {
  BackgroundMapConfig cfg;
  cfg.min_traversals = 3;
  BackgroundMap map(cfg);
  const auto cloud = SinglePoint(10, 5, 1);
  for (int i = 0; i < 2; ++i) map.AddTraversal(cloud, geom::Pose::Identity());
  EXPECT_FALSE(map.IsBackground({10, 5, 1}));
  map.AddTraversal(cloud, geom::Pose::Identity());
  EXPECT_TRUE(map.IsBackground({10, 5, 1}));
  EXPECT_EQ(map.num_traversals(), 3);
  EXPECT_EQ(map.num_background_voxels(), 1u);
}

TEST(BackgroundMapTest, RepeatedReturnsInOneScanCountOnce) {
  BackgroundMapConfig cfg;
  cfg.min_traversals = 2;
  BackgroundMap map(cfg);
  pc::PointCloud cloud;
  for (int i = 0; i < 50; ++i) cloud.Add({10.1, 5.1, 1.1}, 0.5f);
  map.AddTraversal(cloud, geom::Pose::Identity());
  // 50 points in one traversal must not fake two traversals.
  EXPECT_FALSE(map.IsBackground({10, 5, 1}));
}

TEST(BackgroundMapTest, AccountsForSensorPose) {
  BackgroundMapConfig cfg;
  cfg.min_traversals = 1;
  BackgroundMap map(cfg);
  // A point at sensor-frame (5, 0, 0) from a vehicle at world (20, 0, 0).
  const geom::Pose pose = geom::Pose::FromGpsImu({20, 0, 0}, {0, 0, 0});
  map.AddTraversal(SinglePoint(5, 0, 0), pose);
  EXPECT_TRUE(map.IsBackground({25, 0, 0}));
  EXPECT_FALSE(map.IsBackground({5, 0, 0}));
}

TEST(BackgroundMapTest, SubtractKeepsForegroundOnly) {
  BackgroundMapConfig cfg;
  cfg.min_traversals = 1;
  BackgroundMap map(cfg);
  map.AddTraversal(SinglePoint(10, 0, 1), geom::Pose::Identity());

  pc::PointCloud cloud;
  cloud.Add({10.1, 0.1, 1.1}, 0.5f);  // on known background
  cloud.Add({30, 0, 1}, 0.5f);        // new object
  const auto fg = map.SubtractKnownBackground(cloud, geom::Pose::Identity());
  ASSERT_EQ(fg.size(), 1u);
  EXPECT_DOUBLE_EQ(fg[0].position.x, 30.0);
}

TEST(BackgroundMapTest, StaticStructureLearnedMovingCarsKept) {
  // The paper's use case: after several traversals the walls are mapped,
  // so a car that appears later survives subtraction while walls vanish.
  sim::Scene static_scene;
  static_scene.AddObject(sim::ObjectClass::kWall,
                         sim::MakeWallBox({15, 0, 0}, 90.0, 20.0, 3.0), 0.3);
  sim::LidarConfig lidar_cfg = sim::Vlp16Config();
  lidar_cfg.azimuth_steps = 720;
  const sim::LidarSimulator lidar(lidar_cfg);

  BackgroundMapConfig cfg;
  cfg.min_traversals = 3;
  BackgroundMap map(cfg);
  Rng rng(5);
  const geom::Pose sensor{geom::Mat3::Identity(), {0, 0, lidar_cfg.sensor_height}};
  for (int i = 0; i < 4; ++i) {
    map.AddTraversal(lidar.Scan(static_scene, geom::Pose::Identity(), rng),
                     sensor);
  }
  EXPECT_GT(map.num_background_voxels(), 50u);

  // A car parks in front of the wall on the next visit.
  sim::Scene with_car = static_scene;
  const auto car_box = sim::MakeCarBox({9, 1, 0}, 20.0);
  with_car.AddObject(sim::ObjectClass::kCar, car_box, 0.6);
  const auto scan = lidar.Scan(with_car, geom::Pose::Identity(), rng);
  const auto fg = map.SubtractKnownBackground(scan, sensor);

  EXPECT_LT(fg.size(), scan.size() / 2);  // walls and ground subtracted
  geom::Box3 car_sensor = car_box;
  car_sensor.center.z -= lidar_cfg.sensor_height;
  // The new car survives mostly intact (its lowest points share voxels with
  // the mapped ground, so a small fraction is subtracted with it).
  EXPECT_GT(fg.CountInBox(car_sensor.Expanded(0.2)),
            scan.CountInBox(car_sensor.Expanded(0.2)) * 3 / 4);
}

TEST(BackgroundMapTest, VoxelSizeControlsGranularity) {
  BackgroundMapConfig coarse;
  coarse.voxel_size = 2.0;
  coarse.min_traversals = 1;
  BackgroundMap map(coarse);
  map.AddTraversal(SinglePoint(1.0, 1.0, 0.0), geom::Pose::Identity());
  // A point 1.5 m away but in the same 2 m voxel counts as background.
  EXPECT_TRUE(map.IsBackground({0.5, 1.9, 0.5}));
  EXPECT_FALSE(map.IsBackground({2.5, 1.0, 0.0}));
}

}  // namespace
}  // namespace cooper::core
