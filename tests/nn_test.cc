#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/sparse_conv.h"
#include "nn/tensor.h"
#include "nn/vfe.h"

namespace cooper::nn {
namespace {

// --- Tensor ---

TEST(TensorTest, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.At(1, 2), 1.5f);
}

TEST(TensorTest, IndexedAccessLayouts) {
  Tensor t({2, 3, 4});
  t.At(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  Tensor u({2, 2, 2, 2});
  u.At(1, 0, 1, 0) = 3.0f;
  EXPECT_FLOAT_EQ(u[1 * 8 + 0 * 4 + 1 * 2 + 0], 3.0f);
}

TEST(TensorTest, ReluClampsNegatives) {
  Tensor t({3});
  t[0] = -1.0f;
  t[1] = 0.0f;
  t[2] = 2.0f;
  t.Relu();
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[2], 2.0f);
}

TEST(TensorTest, MaxAndSum) {
  Tensor t({4});
  t[0] = 1;
  t[1] = -5;
  t[2] = 3;
  t[3] = 0.5;
  EXPECT_FLOAT_EQ(t.MaxValue(), 3.0f);
  EXPECT_NEAR(t.Sum(), -0.5f, 1e-6);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a({2, 2});
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Tensor b({2, 1});
  b.At(0, 0) = 5;
  b.At(1, 0) = 6;
  const Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 39.0f);
}

// --- Dense layers ---

TEST(LinearTest, OutputShapeAndDeterminism) {
  Rng r1(42), r2(42);
  const Linear l1(4, 8, r1), l2(4, 8, r2);
  Tensor x({3, 4}, 0.5f);
  const Tensor y1 = l1.Forward(x), y2 = l2.Forward(x);
  ASSERT_EQ(y1.dim(0), 3u);
  ASSERT_EQ(y1.dim(1), 8u);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(LinearTest, IdentityWeights) {
  Rng rng(1);
  Linear l(2, 2, rng);
  // Overwrite with identity.
  l.weight().At(0, 0) = 1;
  l.weight().At(0, 1) = 0;
  l.weight().At(1, 0) = 0;
  l.weight().At(1, 1) = 1;
  l.bias()[0] = 10;
  l.bias()[1] = -10;
  Tensor x({1, 2});
  x.At(0, 0) = 3;
  x.At(0, 1) = 4;
  const Tensor y = l.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 13.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), -6.0f);
}

TEST(Conv2dTest, IdentityKernelPreservesInput) {
  Rng rng(2);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  // Zero all weights, set centre tap to 1.
  for (std::size_t i = 0; i < conv.weight().size(); ++i) conv.weight()[i] = 0;
  conv.weight().At(0, 0, 1, 1) = 1.0f;
  Tensor x({1, 5, 5});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.Forward(x);
  ASSERT_EQ(y.dim(1), 5u);
  ASSERT_EQ(y.dim(2), 5u);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2dTest, StrideHalvesResolution) {
  Rng rng(3);
  const Conv2d conv(2, 4, 3, 2, 1, rng);
  Tensor x({2, 8, 8}, 1.0f);
  const Tensor y = conv.Forward(x);
  EXPECT_EQ(y.dim(0), 4u);
  EXPECT_EQ(y.dim(1), 4u);
  EXPECT_EQ(y.dim(2), 4u);
}

TEST(Conv2dTest, SumKernelCountsNeighbours) {
  Rng rng(4);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  for (std::size_t i = 0; i < conv.weight().size(); ++i) conv.weight()[i] = 1.0f;
  Tensor x({1, 3, 3}, 1.0f);
  const Tensor y = conv.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 1, 1), 9.0f);  // full 3x3 support
  EXPECT_FLOAT_EQ(y.At(0, 0, 0), 4.0f);  // corner sees 2x2
}

TEST(Conv2dTest, ParallelForwardBitIdenticalToSerial) {
  Rng rng(6);
  const Conv2d conv(4, 8, 3, 1, 1, rng);
  Tensor x({4, 16, 16});
  Rng data_rng(7);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
  }
  const Tensor serial = conv.Forward(x, 1);
  for (const int threads : {2, 8}) {
    const Tensor parallel = conv.Forward(x, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i], serial[i]) << "threads " << threads << " at " << i;
    }
  }
}

TEST(ConvTranspose2dTest, UpsamplesResolution) {
  Rng rng(5);
  const ConvTranspose2d up(3, 2, 2, 2, rng);
  Tensor x({3, 4, 4}, 0.3f);
  const Tensor y = up.Forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 8u);
  EXPECT_EQ(y.dim(2), 8u);
}

TEST(BatchNormTest, DefaultIsIdentity) {
  const BatchNorm bn(4);
  Tensor x({4, 3}, 2.5f);
  const Tensor y = bn.Forward(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 2.5f);
}

// --- Sparse conv ---

SparseTensor MakeRandomSparse(std::size_t channels, int extent, double density,
                              Rng& rng) {
  SparseTensor s;
  s.spatial_shape = {extent, extent, extent};
  for (int z = 0; z < extent; ++z) {
    for (int y = 0; y < extent; ++y) {
      for (int x = 0; x < extent; ++x) {
        if (rng.Uniform() < density) s.coords.push_back({x, y, z});
      }
    }
  }
  s.features = Tensor({s.coords.size(), channels});
  for (std::size_t i = 0; i < s.features.size(); ++i) {
    s.features[i] = static_cast<float>(rng.Normal());
  }
  return s;
}

TEST(SparseConvTest, SubmanifoldPreservesActiveSet) {
  Rng rng(6);
  const SparseTensor x = MakeRandomSparse(4, 8, 0.1, rng);
  const SparseConv3d conv(4, 4, 3, 1, SparseConvMode::kSubmanifold, rng);
  const SparseTensor y = conv.Forward(x);
  ASSERT_EQ(y.coords.size(), x.coords.size());
  for (std::size_t i = 0; i < x.coords.size(); ++i) {
    EXPECT_EQ(y.coords[i], x.coords[i]);
  }
  EXPECT_EQ(y.spatial_shape, x.spatial_shape);
}

TEST(SparseConvTest, RegularDilatesActiveSet) {
  Rng rng(7);
  SparseTensor x;
  x.spatial_shape = {8, 8, 8};
  x.coords.push_back({4, 4, 4});
  x.features = Tensor({1, 2}, 1.0f);
  const SparseConv3d conv(2, 3, 3, 1, SparseConvMode::kRegular, rng);
  const SparseTensor y = conv.Forward(x);
  // A single input site activates up to 3^3 output sites (clipped to grid).
  EXPECT_EQ(y.coords.size(), 27u);
}

// Property: the sparse path matches the dense reference at every active
// output site, for both modes and several random fields.
class SparseVsDenseTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseVsDenseTest, MatchesDenseReference) {
  const int seed = std::get<0>(GetParam());
  const bool submanifold = std::get<1>(GetParam()) == 0;
  Rng rng(static_cast<std::uint64_t>(seed) * 101 + 3);
  const SparseTensor x = MakeRandomSparse(3, 6, 0.15, rng);
  if (x.coords.empty()) GTEST_SKIP();
  const int stride = submanifold ? 1 : 2;
  const SparseConv3d conv(3, 5, 3, stride,
                          submanifold ? SparseConvMode::kSubmanifold
                                      : SparseConvMode::kRegular,
                          rng);
  const SparseTensor y = conv.Forward(x);
  const Tensor dense = conv.ForwardDenseReference(x);
  // dense is (Cout x Z x (Y*X)) over the output grid; the sparse result
  // already carries the output spatial shape.
  const std::size_t ox = static_cast<std::size_t>(y.spatial_shape.x);
  for (std::size_t i = 0; i < y.coords.size(); ++i) {
    const auto& c = y.coords[i];
    for (std::size_t ch = 0; ch < 5; ++ch) {
      const float ref = dense.At(ch, static_cast<std::size_t>(c.z),
                                 static_cast<std::size_t>(c.y) * ox +
                                     static_cast<std::size_t>(c.x));
      EXPECT_NEAR(y.features.At(i, ch), ref, 1e-4)
          << "site (" << c.x << "," << c.y << "," << c.z << ") ch " << ch;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, SparseVsDenseTest,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(0, 1)));

TEST(SparseConvTest, CostScalesWithOccupancyNotVolume) {
  // An empty field is free regardless of the nominal grid volume.
  Rng rng(8);
  SparseTensor x;
  x.spatial_shape = {1000, 1000, 100};
  x.features = Tensor({0, 4});
  const SparseConv3d conv(4, 4, 3, 1, SparseConvMode::kSubmanifold, rng);
  const SparseTensor y = conv.Forward(x);
  EXPECT_EQ(y.num_active(), 0u);
}

TEST(SparseConvTest, StrideTwoHalvesSpatialShape) {
  Rng rng(9);
  const SparseTensor x = MakeRandomSparse(2, 9, 0.2, rng);
  const SparseConv3d conv(2, 2, 3, 2, SparseConvMode::kRegular, rng);
  const SparseTensor y = conv.Forward(x);
  EXPECT_EQ(y.spatial_shape.x, (9 - 3) / 2 + 1);
  EXPECT_EQ(y.spatial_shape.y, 4);
  EXPECT_EQ(y.spatial_shape.z, 4);
}

TEST(SparseToBevTest, SumsOverZ) {
  SparseTensor s;
  s.spatial_shape = {4, 4, 3};
  s.coords = {{1, 2, 0}, {1, 2, 2}};  // same BEV cell, different z
  s.features = Tensor({2, 1});
  s.features.At(0, 0) = 1.5f;
  s.features.At(1, 0) = 2.5f;
  const Tensor bev = SparseToBev(s);
  ASSERT_EQ(bev.dim(0), 1u);
  ASSERT_EQ(bev.dim(1), 4u);  // y
  ASSERT_EQ(bev.dim(2), 4u);  // x
  EXPECT_FLOAT_EQ(bev.At(0, 2, 1), 4.0f);
  EXPECT_FLOAT_EQ(bev.At(0, 0, 0), 0.0f);
}

// Property: the gather-GEMM rulebook path is bit-identical to the original
// hash-probe implementation (kept as ForwardMapReference), for both modes,
// both strides, any thread count, and with or without a warm scratch.
class RulebookVsMapTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RulebookVsMapTest, ForwardBitIdenticalToMapReference) {
  const int seed = std::get<0>(GetParam());
  const bool submanifold = std::get<1>(GetParam()) == 0;
  Rng rng(static_cast<std::uint64_t>(seed) * 733 + 19);
  const SparseTensor x = MakeRandomSparse(4, 7, 0.2, rng);
  if (x.coords.empty()) GTEST_SKIP();
  const int stride = submanifold ? 1 : 2;
  const SparseConv3d conv(4, 6, 3, stride,
                          submanifold ? SparseConvMode::kSubmanifold
                                      : SparseConvMode::kRegular,
                          rng);
  const SparseTensor ref = conv.ForwardMapReference(x, 1);
  SparseConvScratch scratch;
  for (const int threads : {1, 2, 5}) {
    for (SparseConvScratch* sc : {static_cast<SparseConvScratch*>(nullptr),
                                  &scratch}) {
      const SparseTensor y = conv.Forward(x, threads, sc);
      ASSERT_EQ(y.spatial_shape, ref.spatial_shape) << "threads " << threads;
      ASSERT_EQ(y.coords.size(), ref.coords.size()) << "threads " << threads;
      for (std::size_t i = 0; i < ref.coords.size(); ++i) {
        ASSERT_EQ(y.coords[i], ref.coords[i]) << "threads " << threads;
      }
      ASSERT_EQ(y.features.size(), ref.features.size());
      for (std::size_t i = 0; i < ref.features.size(); ++i) {
        // Bit-exact, not approximate: same accumulation order by design.
        ASSERT_EQ(y.features[i], ref.features[i])
            << "threads " << threads << " scratch " << (sc != nullptr)
            << " at " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ModesAndSeeds, RulebookVsMapTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(0, 1)));

TEST(SparseConvScratchTest, SecondFrameHitsRulebookCache) {
  Rng rng(21);
  const SparseTensor x = MakeRandomSparse(4, 8, 0.15, rng);
  ASSERT_FALSE(x.coords.empty());
  const SparseConv3d conv(4, 4, 3, 1, SparseConvMode::kSubmanifold, rng);
  SparseConvScratch scratch;
  const SparseTensor cold = conv.Forward(x, 1, &scratch);
  EXPECT_EQ(scratch.cache_hits(), 0u);
  EXPECT_EQ(scratch.cache_misses(), 1u);
  const SparseTensor warm = conv.Forward(x, 1, &scratch);
  EXPECT_EQ(scratch.cache_hits(), 1u);
  EXPECT_EQ(scratch.cache_misses(), 1u);
  ASSERT_EQ(warm.features.size(), cold.features.size());
  for (std::size_t i = 0; i < cold.features.size(); ++i) {
    ASSERT_EQ(warm.features[i], cold.features[i]) << i;
  }
  // A different active set must miss and still be computed correctly.
  SparseTensor x2 = x;
  x2.coords.back().x = (x2.coords.back().x + 1) % x.spatial_shape.x;
  const SparseTensor y2 = conv.Forward(x2, 1, &scratch);
  EXPECT_EQ(scratch.cache_misses(), 2u);
  const SparseTensor ref2 = conv.ForwardMapReference(x2, 1);
  ASSERT_EQ(y2.features.size(), ref2.features.size());
  for (std::size_t i = 0; i < ref2.features.size(); ++i) {
    ASSERT_EQ(y2.features[i], ref2.features[i]) << i;
  }
}

// Scalar per-pixel Conv2d reference — the pre-restructure loop, kept here as
// the oracle for the row-sweep implementation.  Bias is recovered exactly by
// convolving a zero input (every output element is then bias[oc]).
Tensor Conv2dScalarReference(const Conv2d& conv, const Tensor& w,
                             const Tensor& x, std::size_t kernel,
                             std::size_t stride, std::size_t padding) {
  const std::size_t cin = x.dim(0), h = x.dim(1), width = x.dim(2);
  const std::size_t cout = conv.out_channels();
  const std::size_t oh = (h + 2 * padding - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * padding - kernel) / stride + 1;
  const Tensor bias_map = conv.Forward(Tensor({cin, h, width}, 0.0f), 1);
  Tensor y({cout, oh, ow});
  for (std::size_t oc = 0; oc < cout; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float acc = bias_map.At(oc, 0, 0);
        for (std::size_t ic = 0; ic < cin; ++ic) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride + ky) -
                static_cast<std::ptrdiff_t>(padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride + kx) -
                  static_cast<std::ptrdiff_t>(padding);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(width)) continue;
              acc += x.At(ic, static_cast<std::size_t>(iy),
                          static_cast<std::size_t>(ix)) *
                     w.At(oc, ic, ky, kx);
            }
          }
        }
        y.At(oc, oy, ox) = acc;
      }
    }
  }
  return y;
}

class Conv2dRowSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Conv2dRowSweepTest, BitIdenticalToScalarReference) {
  const std::size_t stride = static_cast<std::size_t>(std::get<0>(GetParam()));
  const std::size_t padding = static_cast<std::size_t>(std::get<1>(GetParam()));
  Rng rng(stride * 31 + padding * 7 + 5);
  Conv2d conv(3, 4, 3, stride, padding, rng);
  Tensor x({3, 11, 13});
  Rng data_rng(99);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
  }
  const Tensor ref =
      Conv2dScalarReference(conv, conv.weight(), x, 3, stride, padding);
  for (const int threads : {1, 2, 5}) {
    Tensor y;
    conv.ForwardInto(x, threads, &y);
    ASSERT_EQ(y.size(), ref.size()) << "threads " << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(y[i], ref[i]) << "threads " << threads << " at " << i;
    }
    // Second pass reuses y's storage and must land on the same bits.
    const float* before = y.data();
    conv.ForwardInto(x, threads, &y);
    EXPECT_EQ(y.data(), before) << "threads " << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(y[i], ref[i]) << "threads " << threads << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StridesAndPadding, Conv2dRowSweepTest,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(0, 1)));

TEST(SparseToBevTest, OutParamMatchesByValueAndReusesStorage) {
  Rng rng(23);
  const SparseTensor s = MakeRandomSparse(3, 6, 0.25, rng);
  ASSERT_FALSE(s.coords.empty());
  const Tensor by_value = SparseToBev(s);
  Tensor out;
  SparseToBev(s, &out);
  ASSERT_EQ(out.size(), by_value.size());
  for (std::size_t i = 0; i < by_value.size(); ++i) {
    ASSERT_EQ(out[i], by_value[i]) << i;
  }
  const float* before = out.data();
  SparseToBev(s, &out);  // same shape: storage reused, result identical
  EXPECT_EQ(out.data(), before);
  for (std::size_t i = 0; i < by_value.size(); ++i) {
    ASSERT_EQ(out[i], by_value[i]) << i;
  }
}

// --- VFE ---

TEST(VfeTest, EncodesOneFeatureRowPerVoxel) {
  Rng rng(10);
  const VoxelFeatureEncoder vfe(8, rng);
  pc::PointCloud cloud;
  cloud.Add({0.5, 0.5, 0.5}, 0.3f);
  cloud.Add({0.6, 0.5, 0.5}, 0.4f);
  cloud.Add({5.5, 5.5, 0.5}, 0.5f);
  pc::VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 2};
  cfg.voxel_size = {1, 1, 1};
  const pc::VoxelGrid grid(cloud, cfg);
  const SparseTensor out = vfe.Encode(cloud, grid);
  EXPECT_EQ(out.num_active(), 2u);
  EXPECT_EQ(out.channels(), 8u);
  EXPECT_EQ(out.spatial_shape.x, 10);
}

TEST(VfeTest, FeaturesAreNonNegativeAfterRelu) {
  Rng rng(11);
  const VoxelFeatureEncoder vfe(16, rng);
  pc::PointCloud cloud;
  for (int i = 0; i < 50; ++i) {
    cloud.Add({0.1 * i, 0.5, 0.5}, 0.1f * (i % 10));
  }
  pc::VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {10, 10, 2};
  cfg.voxel_size = {1, 1, 1};
  const SparseTensor out = vfe.Encode(cloud, pc::VoxelGrid(cloud, cfg));
  for (std::size_t i = 0; i < out.features.size(); ++i) {
    EXPECT_GE(out.features[i], 0.0f);
  }
}

TEST(VfeTest, DeterministicAcrossInstancesWithSameSeed) {
  pc::PointCloud cloud;
  cloud.Add({1.5, 1.5, 0.5}, 0.7f);
  cloud.Add({1.6, 1.4, 0.6}, 0.2f);
  pc::VoxelGridConfig cfg;
  cfg.min_bound = {0, 0, 0};
  cfg.max_bound = {4, 4, 2};
  cfg.voxel_size = {1, 1, 1};
  const pc::VoxelGrid grid(cloud, cfg);
  Rng r1(77), r2(77);
  const SparseTensor a = VoxelFeatureEncoder(8, r1).Encode(cloud, grid);
  const SparseTensor b = VoxelFeatureEncoder(8, r2).Encode(cloud, grid);
  ASSERT_EQ(a.features.size(), b.features.size());
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_FLOAT_EQ(a.features[i], b.features[i]);
  }
}

}  // namespace
}  // namespace cooper::nn
