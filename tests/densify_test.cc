#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/roi.h"
#include "eval/experiment.h"
#include "pointcloud/spherical_projection.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

namespace cooper {
namespace {

// --- Vertical interpolation in RangeImage::Densify ---

TEST(DensifyTest, FillsBetweenBeamRows) {
  pc::SphericalProjectionConfig cfg;
  cfg.rows = 8;
  cfg.cols = 32;
  cfg.fov_up_deg = 10.0;
  cfg.fov_down_deg = -10.0;
  pc::RangeImage img(cfg);
  // Populate rows 2 and 4 across several columns with a continuous surface;
  // row 3 is the empty between-beam row.
  for (int c = 10; c <= 20; ++c) {
    for (const int r : {2, 4}) {
      auto& px = img.At(r, c);
      px.valid = true;
      px.range = 20.0f;
      px.x = 20.0f;
      px.z = r == 2 ? 1.0f : 0.0f;
    }
  }
  img.Densify(1);
  for (int c = 10; c <= 20; ++c) {
    ASSERT_TRUE(img.At(3, c).valid) << "col " << c;
    EXPECT_NEAR(img.At(3, c).range, 20.0f, 1e-5);
    EXPECT_NEAR(img.At(3, c).z, 0.5f, 1e-5);  // midpoint of the surface
  }
}

TEST(DensifyTest, DoesNotBridgeDepthDiscontinuities) {
  pc::SphericalProjectionConfig cfg;
  cfg.rows = 8;
  cfg.cols = 32;
  cfg.fov_up_deg = 10.0;
  cfg.fov_down_deg = -10.0;
  pc::RangeImage img(cfg);
  // Row 2 at 5 m (near object), row 4 at 40 m (far background): the empty
  // row between them must NOT be invented — it would hallucinate surface in
  // free space.
  for (int c = 10; c <= 20; ++c) {
    auto& top = img.At(2, c);
    top.valid = true;
    top.range = 5.0f;
    auto& bottom = img.At(4, c);
    bottom.valid = true;
    bottom.range = 40.0f;
  }
  img.Densify(1);
  for (int c = 11; c <= 19; ++c) {
    EXPECT_FALSE(img.At(3, c).valid) << "col " << c;
  }
}

TEST(DensifyTest, SparseScanGainsPointsOnObjects) {
  sim::Scene scene;
  const auto car_box = sim::MakeCarBox({10, 1, 0}, 90.0);
  scene.AddObject(sim::ObjectClass::kCar, car_box, 0.6);
  sim::LidarConfig lidar_cfg = sim::Vlp16Config();
  lidar_cfg.azimuth_steps = 900;
  Rng rng(4);
  const auto cloud =
      sim::LidarSimulator(lidar_cfg).Scan(scene, geom::Pose::Identity(), rng);

  pc::SphericalProjectionConfig proj;
  proj.rows = 32;  // 2x the beam count: between-beam rows to interpolate
  proj.cols = 900;
  proj.fov_up_deg = 15.0;
  proj.fov_down_deg = -15.0;
  pc::RangeImage img(proj);
  img.Project(cloud);
  img.Densify(1);
  const auto densified = img.ToPointCloud();

  // The interpolation targets range-continuous *surfaces*: the car should
  // gain substantially (its between-beam rows fill), even though distant
  // ground rings are too far apart in range to interpolate.
  geom::Box3 car_sensor = car_box;
  car_sensor.center.z -= lidar_cfg.sensor_height;
  const auto before = cloud.CountInBox(car_sensor.Expanded(0.2));
  const auto after = densified.CountInBox(car_sensor.Expanded(0.2));
  ASSERT_GT(before, 20u);
  EXPECT_GT(after, before * 13 / 10);
}

// --- ROI config knobs ---

TEST(RoiConfigTest, ShareRangeIsConfigurable) {
  pc::PointCloud cloud;
  for (int i = 0; i < 100; ++i) cloud.Add({0.3 * i + 1.0, 0.0, -1.8}, 0.2f);
  cloud.Add({25.0, 0.0, -1.0}, 0.5f);
  core::RoiConfig tight;
  tight.max_share_range = 10.0;
  core::RoiConfig wide;
  wide.max_share_range = 60.0;
  EXPECT_LT(core::SubtractBackground(cloud, tight).size(),
            core::SubtractBackground(cloud, wide).size());
}

TEST(RoiConfigTest, SectorWidthIsConfigurable) {
  pc::PointCloud cloud;
  for (int deg = -90; deg <= 90; deg += 5) {
    const double rad = geom::DegToRad(deg);
    cloud.Add({10 * std::cos(rad), 10 * std::sin(rad), -1.0}, 0.5f);
  }
  core::RoiConfig narrow;
  narrow.front_sector_half_fov_deg = 20.0;
  core::RoiConfig standard;
  EXPECT_LT(
      core::ExtractRoi(cloud, core::RoiCategory::kFrontSector, narrow).size(),
      core::ExtractRoi(cloud, core::RoiCategory::kFrontSector, standard).size());
}

// --- Experiment options ---

TEST(ExperimentOptionsTest, FullSweepModeCoversAllAzimuths) {
  const auto sc = sim::MakeTjScenario(1);
  eval::ExperimentOptions full;
  full.front_half_fov_deg = 0.0;  // disable the 120-degree crop
  const auto outcome = eval::RunCoopCase(sc, sc.cases[0], full);
  // Without the sector crop, in-range flags depend on distance only.
  for (const auto& t : outcome.targets) {
    EXPECT_EQ(t.in_range_a, t.range_a <= full.detection_range);
  }
  // And the scans keep their rear hemispheres: more points than front-only.
  eval::ExperimentOptions cropped;
  const auto cropped_outcome = eval::RunCoopCase(sc, sc.cases[0], cropped);
  EXPECT_GT(outcome.points_a, cropped_outcome.points_a);
}

}  // namespace
}  // namespace cooper
