#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/cooper.h"
#include "eval/experiment.h"
#include "pointcloud/icp.h"
#include "pointcloud/kdtree.h"
#include "sim/lidar.h"
#include "sim/scene.h"

namespace cooper::pc {
namespace {

PointCloud RandomCloud(std::size_t n, Rng& rng, double extent = 20.0) {
  PointCloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    cloud.Add({rng.Uniform(-extent, extent), rng.Uniform(-extent, extent),
               rng.Uniform(-2, 2)},
              0.5f);
  }
  return cloud;
}

// --- KdTree ---

TEST(KdTreeTest, EmptyTree) {
  const KdTree tree((PointCloud()));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Nearest({0, 0, 0}).has_value());
  EXPECT_TRUE(tree.RadiusSearch({0, 0, 0}, 5.0).empty());
}

TEST(KdTreeTest, SinglePoint) {
  PointCloud c;
  c.Add({1, 2, 3}, 0.0f);
  const KdTree tree(c);
  const auto nn = tree.Nearest({0, 0, 0});
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->index, 0u);
  EXPECT_NEAR(nn->squared_distance, 14.0, 1e-12);
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  Rng rng(11);
  const PointCloud cloud = RandomCloud(500, rng);
  const KdTree tree(cloud);
  for (int trial = 0; trial < 200; ++trial) {
    const geom::Vec3 q{rng.Uniform(-25, 25), rng.Uniform(-25, 25),
                       rng.Uniform(-3, 3)};
    double best = 1e300;
    for (const auto& p : cloud) best = std::min(best, (p.position - q).SquaredNorm());
    const auto nn = tree.Nearest(q);
    ASSERT_TRUE(nn.has_value());
    EXPECT_NEAR(nn->squared_distance, best, 1e-9);
  }
}

TEST(KdTreeTest, NearestWithinRespectsBound) {
  PointCloud c;
  c.Add({10, 0, 0}, 0.0f);
  const KdTree tree(c);
  EXPECT_FALSE(tree.NearestWithin({0, 0, 0}, 25.0).has_value());  // 5 m bound
  EXPECT_TRUE(tree.NearestWithin({0, 0, 0}, 121.0).has_value());
}

TEST(KdTreeTest, NearestWithinBoundaryIsInclusive) {
  // Regression: a neighbour sitting *exactly* at max_squared_distance used to
  // be rejected by the strict seed bound.  The radius is documented inclusive.
  PointCloud c;
  c.Add({3, 0, 0}, 0.0f);
  const KdTree tree(c);
  const auto nn = tree.NearestWithin({0, 0, 0}, 9.0);  // d^2 == 9.0 exactly
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->index, 0u);
  EXPECT_EQ(nn->squared_distance, 9.0);
  // One ulp below the boundary still excludes it.
  EXPECT_FALSE(
      tree.NearestWithin({0, 0, 0}, std::nextafter(9.0, 0.0)).has_value());
  // Degenerate inclusive case: zero radius matches a coincident point.
  EXPECT_TRUE(tree.NearestWithin({3, 0, 0}, 0.0).has_value());
}

TEST(KdTreeTest, RadiusSearchMatchesBruteForce) {
  Rng rng(13);
  const PointCloud cloud = RandomCloud(400, rng);
  const KdTree tree(cloud);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Vec3 q{rng.Uniform(-20, 20), rng.Uniform(-20, 20), 0};
    const double r = rng.Uniform(0.5, 8.0);
    std::size_t brute = 0;
    for (const auto& p : cloud) brute += (p.position - q).SquaredNorm() <= r * r;
    EXPECT_EQ(tree.RadiusSearch(q, r).size(), brute);
  }
}

TEST(KdTreeTest, RadiusSearchOutParamMatchesByValue) {
  Rng rng(17);
  const PointCloud cloud = RandomCloud(300, rng);
  const KdTree tree(cloud);
  std::vector<std::uint32_t> out;
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Vec3 q{rng.Uniform(-20, 20), rng.Uniform(-20, 20),
                       rng.Uniform(-2, 2)};
    const double r = rng.Uniform(0.5, 8.0);
    const std::vector<std::uint32_t> by_value = tree.RadiusSearch(q, r);
    tree.RadiusSearch(q, r, &out);  // must clear previous contents itself
    ASSERT_EQ(out, by_value) << "trial " << trial;
  }
  // Stale contents from a hit-rich query must not leak into an empty result.
  tree.RadiusSearch({1000, 1000, 1000}, 0.1, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  PointCloud c;
  for (int i = 0; i < 10; ++i) c.Add({1, 1, 1}, 0.0f);
  const KdTree tree(c);
  EXPECT_EQ(tree.RadiusSearch({1, 1, 1}, 0.1).size(), 10u);
}

// --- ICP ---

// Structured scene cloud (corners constrain both translation and yaw).
PointCloud StructuredCloud(Rng& rng) {
  PointCloud cloud;
  auto add_box_face = [&](double cx, double cy, double half, int n) {
    for (int i = 0; i < n; ++i) {
      const double t = rng.Uniform(-half, half);
      cloud.Add({cx + t, cy - half, rng.Uniform(0.2, 1.4)}, 0.5f);
      cloud.Add({cx - half, cy + t, rng.Uniform(0.2, 1.4)}, 0.5f);
    }
  };
  add_box_face(5, 3, 1.0, 60);
  add_box_face(-4, 8, 1.2, 60);
  add_box_face(10, -6, 0.9, 60);
  add_box_face(-8, -5, 1.1, 60);
  return cloud;
}

class IcpRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(IcpRecoveryTest, RecoversKnownOffset) {
  Rng rng(17);
  const PointCloud target = StructuredCloud(rng);
  const double offset = GetParam();
  const geom::Pose true_pose(geom::Rz(0.02), {offset, -0.6 * offset, 0.0});
  // source = target moved by the inverse: aligning source onto target must
  // recover true_pose.
  const PointCloud source = target.Transformed(true_pose.Inverse());

  const IcpResult result = IcpAlign(source, target, geom::Pose::Identity());
  ASSERT_TRUE(result.converged) << "offset " << offset;
  // Check alignment quality on the points themselves.
  double err = 0.0;
  for (std::size_t i = 0; i < source.size(); ++i) {
    err += (result.transform * source[i].position - target[i].position).Norm();
  }
  EXPECT_LT(err / static_cast<double>(source.size()), 0.05) << "offset " << offset;
}

INSTANTIATE_TEST_SUITE_P(Offsets, IcpRecoveryTest,
                         ::testing::Values(0.1, 0.3, 0.7, 1.2));

TEST(IcpTest, AlreadyAlignedConvergesImmediately) {
  Rng rng(19);
  const PointCloud cloud = StructuredCloud(rng);
  const IcpResult result = IcpAlign(cloud, cloud, geom::Pose::Identity());
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 3);
  EXPECT_LT(result.rms_error, 1e-6);
}

TEST(IcpTest, EmptyInputsFailGracefully) {
  PointCloud empty;
  Rng rng(21);
  const PointCloud cloud = StructuredCloud(rng);
  EXPECT_FALSE(IcpAlign(empty, cloud, geom::Pose::Identity()).converged);
  EXPECT_FALSE(IcpAlign(cloud, empty, geom::Pose::Identity()).converged);
}

TEST(IcpTest, TooFewCorrespondencesFails) {
  PointCloud a, b;
  a.Add({0, 0, 0}, 0.0f);
  b.Add({100, 100, 0}, 0.0f);  // outside correspondence range
  EXPECT_FALSE(IcpAlign(a, b, geom::Pose::Identity()).converged);
}

TEST(IcpTest, FinalRmsReflectsAppliedTransform) {
  // Regression: rms_error used to be computed from correspondences gathered
  // *before* the final delta was applied, so it described the previous
  // iterate.  For a converging pair the residual of the returned transform
  // must improve on the initial guess.
  Rng rng(31);
  const PointCloud target = StructuredCloud(rng);
  const geom::Pose true_pose(geom::Rz(0.03), {0.8, -0.5, 0.0});
  const PointCloud source = target.Transformed(true_pose.Inverse());
  const IcpResult result = IcpAlign(source, target, geom::Pose::Identity());
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.initial_rms, 0.1);
  EXPECT_LE(result.rms_error, result.initial_rms);
  EXPECT_LT(result.rms_error, 0.05);  // residual of the *final* transform
}

TEST(IcpTest, ParallelSearchBitIdenticalToSerial) {
  Rng rng(37);
  const PointCloud target = StructuredCloud(rng);
  const geom::Pose true_pose(geom::Rz(0.02), {0.6, -0.4, 0.0});
  const PointCloud source = target.Transformed(true_pose.Inverse());
  IcpConfig serial_cfg;
  serial_cfg.num_threads = 1;
  const IcpResult serial = IcpAlign(source, target, geom::Pose::Identity(),
                                    serial_cfg);
  for (const int threads : {2, 8}) {
    IcpConfig cfg = serial_cfg;
    cfg.num_threads = threads;
    const IcpResult parallel =
        IcpAlign(source, target, geom::Pose::Identity(), cfg);
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads;
    EXPECT_EQ(parallel.correspondences, serial.correspondences) << threads;
    EXPECT_EQ(parallel.rms_error, serial.rms_error) << threads;
    EXPECT_EQ(parallel.transform.translation().x,
              serial.transform.translation().x)
        << threads;
    EXPECT_EQ(parallel.transform.translation().y,
              serial.transform.translation().y)
        << threads;
  }
}

TEST(IcpTest, InitialGuessComposes) {
  Rng rng(23);
  const PointCloud target = StructuredCloud(rng);
  const geom::Pose true_pose(geom::Rz(0.05), {3.0, -2.0, 0.0});
  const PointCloud source = target.Transformed(true_pose.Inverse());
  // A guess near the truth: ICP should polish, not diverge.
  const geom::Pose guess(geom::Rz(0.04), {2.8, -1.7, 0.0});
  const IcpResult result = IcpAlign(source, target, guess);
  ASSERT_TRUE(result.converged);
  double err = 0.0;
  for (std::size_t i = 0; i < source.size(); ++i) {
    err += (result.transform * source[i].position - target[i].position).Norm();
  }
  EXPECT_LT(err / static_cast<double>(source.size()), 0.05);
}

// --- ICP refinement inside the Cooper pipeline ---

TEST(IcpPipelineTest, RefinementRecoversLargeGpsDrift) {
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12, 3, 0}, 10.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({18, -4, 0}, 170.0), 0.6);
  scene.AddObject(sim::ObjectClass::kWall, sim::MakeWallBox({25, 5, 0}, 30.0, 14.0), 0.3);
  sim::LidarConfig lidar_cfg = sim::Hdl64Config();
  lidar_cfg.azimuth_steps = 720;

  Rng rng(29);
  const sim::LidarSimulator lidar(lidar_cfg);
  const geom::Pose pose_a = geom::Pose::Identity();
  const geom::Pose pose_b = geom::Pose::FromGpsImu({6, 2, 0}, {geom::DegToRad(15), 0, 0});
  const auto cloud_a = lidar.Scan(scene, pose_a, rng);
  const auto cloud_b = lidar.Scan(scene, pose_b, rng);

  const geom::Vec3 mount{0, 0, lidar_cfg.sensor_height};
  const core::NavMetadata nav_a{{0, 0, 0}, {0, 0, 0}, mount};
  // Transmitter reports GPS with 1.5 m drift — far past the Fig. 10 bound.
  core::NavMetadata nav_b{{6 + 1.1, 2 - 1.0, 0}, {geom::DegToRad(15), 0, 0}, mount};

  core::CooperConfig cfg = eval::MakeCooperConfig(lidar_cfg);
  const core::CooperPipeline plain(cfg);
  cfg.icp_refinement = true;
  const core::CooperPipeline refined(cfg);

  const auto package = plain.MakePackage(2, 0.0, core::RoiCategory::kFullFrame,
                                         nav_b, cloud_b);

  // Measure alignment error of the reconstructed remote cloud against the
  // geometric truth via a detection-level check: the fused detection for the
  // car at (12, 3) must sit near the truth with refinement enabled.
  const auto coop = refined.DetectCooperative(cloud_a, nav_a, package);
  ASSERT_TRUE(coop.ok());
  bool found_near_truth = false;
  for (const auto& d : coop->fused.detections) {
    if (d.score >= 0.5 && std::abs(d.box.center.x - 12.0) < 1.2 &&
        std::abs(d.box.center.y - 3.0) < 1.2) {
      found_near_truth = true;
    }
  }
  EXPECT_TRUE(found_near_truth);
}

}  // namespace
}  // namespace cooper::pc
