#include <gtest/gtest.h>

#include "eval/ap.h"

namespace cooper::eval {
namespace {

spod::Detection Det(double x, double y, double score) {
  spod::Detection d;
  d.box = geom::Box3{{x, y, 0.75}, 4.5, 1.8, 1.5, 0.0};
  d.score = score;
  return d;
}

geom::Box3 Gt(double x, double y) {
  return geom::Box3{{x, y, 0.75}, 4.5, 1.8, 1.5, 0.0};
}

TEST(ApTest, PerfectDetectionsGiveApOne) {
  const std::vector<std::vector<spod::Detection>> dets{
      {Det(10, 0, 0.9), Det(20, 0, 0.8)}};
  const std::vector<std::vector<geom::Box3>> gt{{Gt(10, 0), Gt(20, 0)}};
  const auto r = ComputeAp(dets, gt);
  EXPECT_NEAR(r.ap, 1.0, 1e-12);
  EXPECT_EQ(r.true_positives, 2u);
  EXPECT_EQ(r.false_positives, 0u);
}

TEST(ApTest, NoDetectionsGiveApZero) {
  const std::vector<std::vector<spod::Detection>> dets{{}};
  const std::vector<std::vector<geom::Box3>> gt{{Gt(10, 0)}};
  EXPECT_DOUBLE_EQ(ComputeAp(dets, gt).ap, 0.0);
}

TEST(ApTest, NoGroundTruthGivesApZero) {
  const std::vector<std::vector<spod::Detection>> dets{{Det(10, 0, 0.9)}};
  const std::vector<std::vector<geom::Box3>> gt{{}};
  EXPECT_DOUBLE_EQ(ComputeAp(dets, gt).ap, 0.0);
}

TEST(ApTest, HighScoredFalsePositiveHurtsMore) {
  // A confident FP above all TPs caps precision early.
  const std::vector<std::vector<spod::Detection>> dets_fp_high{
      {Det(50, 20, 0.95), Det(10, 0, 0.9)}};
  const std::vector<std::vector<spod::Detection>> dets_fp_low{
      {Det(50, 20, 0.1), Det(10, 0, 0.9)}};
  const std::vector<std::vector<geom::Box3>> gt{{Gt(10, 0)}};
  EXPECT_LT(ComputeAp(dets_fp_high, gt).ap, ComputeAp(dets_fp_low, gt).ap);
  EXPECT_NEAR(ComputeAp(dets_fp_low, gt).ap, 1.0, 1e-12);
  EXPECT_NEAR(ComputeAp(dets_fp_high, gt).ap, 0.5, 1e-12);
}

TEST(ApTest, MissedGroundTruthCapsRecall) {
  const std::vector<std::vector<spod::Detection>> dets{{Det(10, 0, 0.9)}};
  const std::vector<std::vector<geom::Box3>> gt{{Gt(10, 0), Gt(40, 0)}};
  const auto r = ComputeAp(dets, gt);
  EXPECT_NEAR(r.ap, 0.5, 1e-12);  // perfect precision, recall 0.5
  ASSERT_FALSE(r.curve.empty());
  EXPECT_NEAR(r.curve.back().recall, 0.5, 1e-12);
}

TEST(ApTest, DetectionsDoNotMatchAcrossFrames) {
  // Frame 0's detection must not consume frame 1's ground truth.
  const std::vector<std::vector<spod::Detection>> dets{{Det(10, 0, 0.9)}, {}};
  const std::vector<std::vector<geom::Box3>> gt{{}, {Gt(10, 0)}};
  const auto r = ComputeAp(dets, gt);
  EXPECT_EQ(r.true_positives, 0u);
  EXPECT_EQ(r.false_positives, 1u);
}

TEST(ApTest, DuplicateDetectionsCountOnceAsTp) {
  const std::vector<std::vector<spod::Detection>> dets{
      {Det(10, 0, 0.9), Det(10.2, 0, 0.8)}};
  const std::vector<std::vector<geom::Box3>> gt{{Gt(10, 0)}};
  const auto r = ComputeAp(dets, gt);
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.false_positives, 1u);
}

TEST(ApTest, CurveIsScoreOrdered) {
  const std::vector<std::vector<spod::Detection>> dets{
      {Det(10, 0, 0.5), Det(20, 0, 0.9), Det(30, 0, 0.7)}};
  const std::vector<std::vector<geom::Box3>> gt{
      {Gt(10, 0), Gt(20, 0), Gt(30, 0)}};
  const auto r = ComputeAp(dets, gt);
  ASSERT_EQ(r.curve.size(), 3u);
  EXPECT_GE(r.curve[0].score, r.curve[1].score);
  EXPECT_GE(r.curve[1].score, r.curve[2].score);
  EXPECT_NEAR(r.ap, 1.0, 1e-12);
}

}  // namespace
}  // namespace cooper::eval
