#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/box.h"
#include "geom/pose.h"
#include "geom/rotation.h"
#include "geom/vec3.h"

namespace cooper::geom {
namespace {

constexpr double kTol = 1e-9;

void ExpectVecNear(const Vec3& a, const Vec3& b, double tol = 1e-9) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

// --- Vec3 / Mat3 ---

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  ExpectVecNear(a + b, {5, 7, 9});
  ExpectVecNear(b - a, {3, 3, 3});
  ExpectVecNear(a * 2.0, {2, 4, 6});
  ExpectVecNear(2.0 * a, {2, 4, 6});
  ExpectVecNear(a / 2.0, {0.5, 1, 1.5});
  ExpectVecNear(-a, {-1, -2, -3});
}

TEST(Vec3Test, DotCrossNorm) {
  const Vec3 a{1, 0, 0}, b{0, 1, 0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  ExpectVecNear(a.Cross(b), {0, 0, 1});
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 12).NormXY(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(2, 0, 0).SquaredNorm(), 4.0);
}

TEST(Vec3Test, NormalizedUnitLength) {
  const Vec3 v = Vec3(3, -4, 12).Normalized();
  EXPECT_NEAR(v.Norm(), 1.0, kTol);
  ExpectVecNear(Vec3().Normalized(), {0, 0, 0});  // zero-safe
}

TEST(Mat3Test, IdentityActsTrivially) {
  const Mat3 I = Mat3::Identity();
  ExpectVecNear(I * Vec3{1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(I.Trace(), 3.0);
}

TEST(Mat3Test, MultiplicationAssociativity) {
  const Mat3 a = Rz(0.3), b = Ry(-0.7), c = Rx(1.1);
  EXPECT_LT(MaxAbsDiff((a * b) * c, a * (b * c)), kTol);
}

TEST(Mat3Test, TransposeOfRotationIsInverse) {
  const Mat3 r = RotationFromEuler({0.4, -0.2, 0.9});
  EXPECT_LT(MaxAbsDiff(r * r.Transposed(), Mat3::Identity()), kTol);
}

// --- Rotations (Eq. 1) ---

TEST(RotationTest, BasicRotationsMoveAxes) {
  // Rz(90 deg) maps x -> y.
  ExpectVecNear(Rz(DegToRad(90)) * Vec3{1, 0, 0}, {0, 1, 0});
  // Ry(90 deg) maps z -> x.
  ExpectVecNear(Ry(DegToRad(90)) * Vec3{0, 0, 1}, {1, 0, 0});
  // Rx(90 deg) maps y -> z.
  ExpectVecNear(Rx(DegToRad(90)) * Vec3{0, 1, 0}, {0, 0, 1});
}

TEST(RotationTest, Eq1CompositionOrder) {
  // Eq. 1: R = Rz(alpha) Ry(beta) Rx(gamma).
  const EulerAngles e{0.5, -0.3, 0.8};
  const Mat3 expected = Rz(e.yaw) * Ry(e.pitch) * Rx(e.roll);
  EXPECT_LT(MaxAbsDiff(RotationFromEuler(e), expected), kTol);
}

TEST(RotationTest, AllBasicRotationsAreProper) {
  for (double a = -3.0; a <= 3.0; a += 0.37) {
    EXPECT_TRUE(IsRotation(Rz(a)));
    EXPECT_TRUE(IsRotation(Ry(a)));
    EXPECT_TRUE(IsRotation(Rx(a)));
  }
}

TEST(RotationTest, DeterminantOfRotationIsOne) {
  EXPECT_NEAR(Determinant(RotationFromEuler({1.1, 0.2, -0.4})), 1.0, kTol);
}

TEST(RotationTest, ZeroAnglesGiveIdentity) {
  EXPECT_LT(MaxAbsDiff(RotationFromEuler({0, 0, 0}), Mat3::Identity()), kTol);
}

// Property: Euler -> matrix -> Euler round trip over a dense sweep.
class EulerRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(EulerRoundTripTest, RoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const EulerAngles e{rng.Uniform(-3.1, 3.1), rng.Uniform(-1.5, 1.5),
                      rng.Uniform(-3.1, 3.1)};
  const Mat3 r = RotationFromEuler(e);
  ASSERT_TRUE(IsRotation(r, 1e-9));
  const EulerAngles back = EulerFromRotation(r);
  const Mat3 r2 = RotationFromEuler(back);
  EXPECT_LT(MaxAbsDiff(r, r2), 1e-9) << "yaw=" << e.yaw << " pitch=" << e.pitch
                                     << " roll=" << e.roll;
}

INSTANTIATE_TEST_SUITE_P(RandomAngles, EulerRoundTripTest,
                         ::testing::Range(0, 50));

TEST(RotationTest, GimbalLockHandled) {
  const EulerAngles e{0.7, DegToRad(90.0), 0.0};
  const Mat3 r = RotationFromEuler(e);
  const EulerAngles back = EulerFromRotation(r);
  EXPECT_LT(MaxAbsDiff(r, RotationFromEuler(back)), 1e-9);
}

TEST(WrapAngleTest, WrapsIntoHalfOpenInterval) {
  EXPECT_NEAR(WrapAngle(0.0), 0.0, kTol);
  EXPECT_NEAR(WrapAngle(4.0 * 3.14159265358979), 0.0, 1e-9);
  EXPECT_NEAR(WrapAngle(3.5), 3.5 - 2 * 3.141592653589793, 1e-9);
  EXPECT_NEAR(WrapAngle(-3.5), -3.5 + 2 * 3.141592653589793, 1e-9);
}

// --- Pose ---

TEST(PoseTest, IdentityLeavesPointsUnchanged) {
  ExpectVecNear(Pose::Identity() * Vec3{3, 1, 4}, {3, 1, 4});
}

TEST(PoseTest, ApplyRotationThenTranslation) {
  const Pose p(Rz(DegToRad(90)), {10, 0, 0});
  ExpectVecNear(p * Vec3{1, 0, 0}, {10, 1, 0}, 1e-9);
}

TEST(PoseTest, CompositionMatchesSequentialApplication) {
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const Pose a(RotationFromEuler({rng.Uniform(-3, 3), rng.Uniform(-1, 1),
                                    rng.Uniform(-3, 3)}),
                 {rng.Uniform(-10, 10), rng.Uniform(-10, 10), rng.Uniform(-2, 2)});
    const Pose b(RotationFromEuler({rng.Uniform(-3, 3), rng.Uniform(-1, 1),
                                    rng.Uniform(-3, 3)}),
                 {rng.Uniform(-10, 10), rng.Uniform(-10, 10), rng.Uniform(-2, 2)});
    const Vec3 p{rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    ExpectVecNear((a * b) * p, a * (b * p), 1e-9);
  }
}

TEST(PoseTest, InverseUndoesTransform) {
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    const Pose a(RotationFromEuler({rng.Uniform(-3, 3), rng.Uniform(-1, 1),
                                    rng.Uniform(-3, 3)}),
                 {rng.Uniform(-10, 10), rng.Uniform(-10, 10), rng.Uniform(-2, 2)});
    const Vec3 p{rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    ExpectVecNear(a.Inverse() * (a * p), p, 1e-9);
  }
}

TEST(PoseTest, BetweenMapsFramesCorrectly) {
  // A point fixed in the world, seen from two vehicle poses: Between(a, b)
  // must map b-frame coordinates into a-frame coordinates.
  const Pose a = Pose::FromGpsImu({10, 5, 0}, {DegToRad(30), 0, 0});
  const Pose b = Pose::FromGpsImu({-3, 8, 0.5}, {DegToRad(-45), 0, 0});
  const Vec3 world{2, -7, 1};
  const Vec3 in_a = a.Inverse() * world;
  const Vec3 in_b = b.Inverse() * world;
  ExpectVecNear(Pose::Between(a, b) * in_b, in_a, 1e-9);
}

TEST(PoseTest, FromGpsImuUsesEq1Rotation) {
  const EulerAngles e{0.3, 0.1, -0.2};
  const Pose p = Pose::FromGpsImu({1, 2, 3}, e);
  EXPECT_LT(MaxAbsDiff(p.rotation(), RotationFromEuler(e)), kTol);
  ExpectVecNear(p.translation(), {1, 2, 3});
}

// --- Boxes ---

TEST(BoxTest, VolumeAndArea) {
  const Box3 b{{0, 0, 0}, 4.0, 2.0, 1.5, 0.0};
  EXPECT_DOUBLE_EQ(b.Volume(), 12.0);
  EXPECT_DOUBLE_EQ(b.BevArea(), 8.0);
}

TEST(BoxTest, AxisAlignedCorners) {
  const Box3 b{{1, 1, 1}, 2.0, 2.0, 2.0, 0.0};
  const auto c = b.Corners();
  // Bottom corners at z = 0, top at z = 2.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c[i].z, 0.0);
  for (int i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(c[i].z, 2.0);
}

TEST(BoxTest, ContainsRespectsYaw) {
  const Box3 b{{0, 0, 0}, 4.0, 1.0, 2.0, DegToRad(90)};
  // After 90-degree yaw the long axis lies along y.
  EXPECT_TRUE(b.Contains({0.0, 1.9, 0.0}));
  EXPECT_FALSE(b.Contains({1.9, 0.0, 0.0}));
}

TEST(BoxTest, ContainsBoundaryInclusive) {
  const Box3 b{{0, 0, 0}, 2.0, 2.0, 2.0, 0.0};
  EXPECT_TRUE(b.Contains({1.0, 1.0, 1.0}));
  EXPECT_FALSE(b.Contains({1.0001, 0.0, 0.0}));
}

TEST(BoxTest, TransformedMovesCenterAndYaw) {
  const Box3 b{{1, 0, 0}, 4.0, 2.0, 1.5, 0.0};
  const Pose p(Rz(DegToRad(90)), {0, 0, 0});
  const Box3 t = b.Transformed(p);
  ExpectVecNear(t.center, {0, 1, 0}, 1e-9);
  EXPECT_NEAR(t.yaw, DegToRad(90), 1e-9);
}

TEST(BoxTest, TransformRoundTripThroughInverse) {
  const Box3 b{{3, -2, 0.5}, 4.5, 1.8, 1.5, 0.7};
  const Pose p = Pose::FromGpsImu({10, 20, 0}, {1.2, 0, 0});
  const Box3 back = b.Transformed(p).Transformed(p.Inverse());
  ExpectVecNear(back.center, b.center, 1e-9);
  EXPECT_NEAR(WrapAngle(back.yaw - b.yaw), 0.0, 1e-9);
}

TEST(BoxTest, ExpandedGrowsAllDims) {
  const Box3 b{{0, 0, 0}, 4.0, 2.0, 1.0, 0.3};
  const Box3 e = b.Expanded(0.5);
  EXPECT_DOUBLE_EQ(e.length, 5.0);
  EXPECT_DOUBLE_EQ(e.width, 3.0);
  EXPECT_DOUBLE_EQ(e.height, 2.0);
}

// --- Polygon clipping & IoU ---

TEST(PolygonTest, UnitSquareArea) {
  const std::vector<Vec3> sq{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}};
  EXPECT_DOUBLE_EQ(PolygonArea(sq), 1.0);
}

TEST(PolygonTest, DegeneratePolygonHasZeroArea) {
  EXPECT_DOUBLE_EQ(PolygonArea({{0, 0, 0}, {1, 1, 0}}), 0.0);
}

TEST(PolygonTest, ClipOverlappingSquares) {
  const std::vector<Vec3> a{{0, 0, 0}, {2, 0, 0}, {2, 2, 0}, {0, 2, 0}};
  const std::vector<Vec3> b{{1, 1, 0}, {3, 1, 0}, {3, 3, 0}, {1, 3, 0}};
  EXPECT_NEAR(PolygonArea(ClipConvexPolygon(a, b)), 1.0, 1e-9);
}

TEST(PolygonTest, ClipDisjointIsEmpty) {
  const std::vector<Vec3> a{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}};
  const std::vector<Vec3> b{{5, 5, 0}, {6, 5, 0}, {6, 6, 0}, {5, 6, 0}};
  EXPECT_NEAR(PolygonArea(ClipConvexPolygon(a, b)), 0.0, 1e-12);
}

TEST(IouTest, IdenticalBoxesHaveIouOne) {
  const Box3 b{{2, 3, 0}, 4.5, 1.8, 1.5, 0.6};
  EXPECT_NEAR(BevIou(b, b), 1.0, 1e-9);
  EXPECT_NEAR(Iou3d(b, b), 1.0, 1e-9);
}

TEST(IouTest, DisjointBoxesHaveIouZero) {
  const Box3 a{{0, 0, 0}, 2, 2, 2, 0};
  const Box3 b{{10, 0, 0}, 2, 2, 2, 0};
  EXPECT_DOUBLE_EQ(BevIou(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Iou3d(a, b), 0.0);
}

TEST(IouTest, KnownPartialOverlap) {
  const Box3 a{{0, 0, 0}, 2, 2, 2, 0};
  const Box3 b{{1, 0, 0}, 2, 2, 2, 0};
  // Overlap 1x2 = 2; union 4+4-2 = 6.
  EXPECT_NEAR(BevIou(a, b), 2.0 / 6.0, 1e-9);
}

TEST(IouTest, ZOffsetReducesOnly3dIou) {
  const Box3 a{{0, 0, 0}, 2, 2, 2, 0};
  Box3 b = a;
  b.center.z = 1.0;  // half the height offset
  EXPECT_NEAR(BevIou(a, b), 1.0, 1e-9);
  // Overlap z = 1 of 2; inter = 4, union = 8+8-4 = 12.
  EXPECT_NEAR(Iou3d(a, b), 4.0 / 12.0, 1e-9);
}

TEST(IouTest, RotatedBoxOverlap) {
  const Box3 a{{0, 0, 0}, 2, 2, 2, 0};
  const Box3 b{{0, 0, 0}, 2, 2, 2, DegToRad(45)};
  const double iou = BevIou(a, b);
  // A square rotated 45 degrees inside the same square: intersection is the
  // regular octagon, area 8(sqrt(2)-1) ~ 3.3137; union 8 - inter.
  const double inter = 8.0 * (std::sqrt(2.0) - 1.0);
  EXPECT_NEAR(iou, inter / (8.0 - inter), 1e-6);
}

// Property sweep: IoU is symmetric and within [0, 1] for random box pairs.
class IouPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IouPropertyTest, SymmetricAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const Box3 a{{rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-1, 1)},
               rng.Uniform(1, 6), rng.Uniform(1, 4), rng.Uniform(1, 3),
               rng.Uniform(-3, 3)};
  const Box3 b{{rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-1, 1)},
               rng.Uniform(1, 6), rng.Uniform(1, 4), rng.Uniform(1, 3),
               rng.Uniform(-3, 3)};
  const double ab = BevIou(a, b), ba = BevIou(b, a);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0 + 1e-12);
  const double v = Iou3d(a, b);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0 + 1e-12);
  // 3D IoU never exceeds BEV IoU: dz <= min(h1, h2) implies
  // I*dz/(A1 h1 + A2 h2 - I*dz) <= I/(A1 + A2 - I).
  EXPECT_LE(v, ab + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomBoxes, IouPropertyTest, ::testing::Range(0, 60));

TEST(IouTest, CenterDistance) {
  const Box3 a{{0, 0, 0}, 1, 1, 1, 0};
  const Box3 b{{3, 4, 10}, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(BevCenterDistance(a, b), 5.0);  // z ignored
}

}  // namespace
}  // namespace cooper::geom
