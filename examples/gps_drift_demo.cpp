// Fusion robustness against GPS drift (§IV-F, Fig. 10).
//
// Walks one cooperative case through increasing injected GPS error — from
// the integrated INS/GPS bound (10 cm) to far past it — and reports the
// point-cloud alignment error and the cooperative detections at each level,
// showing where raw-data fusion starts to degrade.
#include <cstdio>

#include "core/cooper.h"
#include "eval/experiment.h"
#include "eval/matching.h"
#include "sim/lidar.h"
#include "sim/scenario.h"
#include "sim/sensors.h"

using namespace cooper;

namespace {

// Ground-truth car boxes expressed in the receiver's sensor frame.
std::vector<geom::Box3> GtBoxes(const sim::Scenario& scenario,
                                const sim::VehicleState& receiver,
                                double sensor_height) {
  const geom::Pose sensor_pose =
      receiver.ToPose() *
      geom::Pose(geom::Mat3::Identity(), {0, 0, sensor_height});
  std::vector<geom::Box3> out;
  for (const auto& obj : scenario.scene.objects()) {
    if (obj.cls != sim::ObjectClass::kCar) continue;
    out.push_back(obj.box.Transformed(sensor_pose.Inverse()));
  }
  return out;
}

}  // namespace

int main() {
  const auto scenario = sim::MakeTjScenario(3);
  const auto& coop_case = scenario.cases[1];
  const auto& va = scenario.viewpoints[coop_case.a];
  const auto& vb = scenario.viewpoints[coop_case.b];

  const core::CooperPipeline pipeline(eval::MakeCooperConfig(scenario.lidar));
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(7);
  const auto cloud_a = lidar.Scan(scenario.scene, va.ToPose(), rng);
  const auto cloud_b = lidar.Scan(scenario.scene, vb.ToPose(), rng);
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  const core::NavMetadata nav_a{va.position, va.attitude, mount};

  std::printf("scenario %s, cooperators %s + %s (delta-d = %.1f m)\n",
              scenario.name.c_str(), va.name.c_str(), vb.name.c_str(),
              sim::CaseDeltaD(scenario, coop_case));
  std::printf("max INS/GPS drift bound: %.2f m\n\n", sim::kMaxGpsDrift);
  const auto gt = GtBoxes(scenario, va, scenario.lidar.sensor_height);
  std::printf("injected drift (m) | true cars detected | spurious detections\n");

  for (const double drift : {0.0, 0.05, 0.10, 0.20, 0.50, 1.00, 2.00}) {
    // Skew the transmitter's reported GPS diagonally by `drift`.
    core::NavMetadata nav_b{vb.position, vb.attitude, mount};
    nav_b.gps_position.x += drift / std::numbers::sqrt2;
    nav_b.gps_position.y += drift / std::numbers::sqrt2;

    const auto package = pipeline.MakePackage(
        2, 0.0, core::RoiCategory::kFullFrame, nav_b, cloud_b);
    const auto coop = pipeline.DetectCooperative(cloud_a, nav_a, package);
    if (!coop.ok()) {
      std::printf("%18.2f | pipeline error: %s\n", drift,
                  coop.status().ToString().c_str());
      continue;
    }
    std::vector<spod::Detection> confident;
    for (const auto& d : coop->fused.detections) {
      if (d.score >= eval::kScoreThreshold) confident.push_back(d);
    }
    const auto matches = eval::MatchDetections(confident, gt);
    int matched = 0;
    for (const auto& m : matches) matched += m.matched ? 1 : 0;
    std::printf("%18.2f | %18d | %zu\n", drift, matched,
                confident.size() - static_cast<std::size_t>(matched));
  }

  std::printf("\nwithin the 0.1 m INS/GPS bound (and well past it) fusion is "
              "unaffected; misalignment only starts smearing clusters into\n"
              "ghost detections near the LiDAR clustering scale (~1-2 m), "
              "matching the paper's robustness finding.\n");
  return 0;
}
