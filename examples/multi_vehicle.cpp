// Multi-vehicle cooperative perception with authenticated packages.
//
// Five connected vehicles in a congested parking lot run a full cooperation
// round: every vehicle broadcasts a sealed (SipHash-MAC'd) exchange package
// over a lossy DSRC channel; vehicle 1 verifies, unpacks and fuses whatever
// arrives intact, then compares its single-shot view against the fleet view.
// A sixth, unregistered "vehicle" injects a forged package to show the
// authentication path rejecting it.
#include <cstdio>

#include "core/session.h"
#include "eval/experiment.h"
#include "net/auth.h"
#include "net/dsrc.h"
#include "net/serialize.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace cooper;

namespace {

net::MacKey KeyFor(std::uint32_t vehicle) {
  net::MacKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(vehicle * 31 + i);
  }
  return key;
}

}  // namespace

int main() {
  const auto scenario = sim::MakeTjScenario(2);
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(1234);

  // Scan every viewpoint.
  std::vector<pc::PointCloud> clouds;
  std::vector<core::NavMetadata> navs;
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};
  for (const auto& vp : scenario.viewpoints) {
    clouds.push_back(lidar.Scan(scenario.scene, vp.ToPose(), rng));
    navs.push_back(core::NavMetadata{vp.position, vp.attitude, mount});
  }
  std::printf("fleet of %zu vehicles, %zu ground-truth cars in the lot\n\n",
              scenario.viewpoints.size(), scenario.scene.Targets().size());

  core::CooperativeSession session(eval::MakeCooperConfig(scenario.lidar));
  net::PackageAuthenticator auth;
  net::DsrcChannel channel(net::DsrcConfig{6.0, 2.0, /*loss=*/0.1, 0.9});

  // Vehicle 1 knows keys for vehicles 2..5 (vehicular PKI stand-in).
  for (std::uint32_t v = 2; v <= 5; ++v) auth.RegisterSender(v, KeyFor(v));

  // Each cooperator broadcasts one sealed package.
  for (std::uint32_t v = 2; v <= 5; ++v) {
    const auto package = session.pipeline().MakePackage(
        v, /*timestamp_s=*/1.0, core::RoiCategory::kFullFrame, navs[v - 1],
        clouds[v - 1]);
    auto sealed = net::Seal(KeyFor(v), net::SerializePackage(package));
    const auto report = channel.Transmit(sealed.wire_bytes.size(), rng);
    if (!report.delivered) {
      std::printf("vehicle %u: package lost on the channel\n", v);
      continue;
    }
    if (const auto s = auth.Verify(v, 1.0, sealed); !s.ok()) {
      std::printf("vehicle %u: rejected (%s)\n", v, s.ToString().c_str());
      continue;
    }
    const auto parsed = net::DeserializePackage(sealed.wire_bytes);
    if (!parsed.ok()) continue;
    if (session.ReceivePackage(*parsed, 1.0).ok()) {
      std::printf("vehicle %u: accepted, %.2f Mbit, latency %.1f ms\n", v,
                  sealed.wire_bytes.size() * 8.0 / 1e6, report.latency_ms);
    }
  }

  // An attacker forges a package claiming to be vehicle 3.
  {
    auto forged = session.pipeline().MakePackage(
        3, 2.0, core::RoiCategory::kFullFrame, navs[0], clouds[0]);
    auto sealed = net::Seal(KeyFor(99), net::SerializePackage(forged));
    const auto s = auth.Verify(3, 2.0, sealed);
    std::printf("forged package from 'vehicle 3': %s\n", s.ToString().c_str());
  }

  // Perception with everything that survived.
  const auto single = session.DetectSingleShot(clouds[0]);
  const auto fleet = session.DetectCooperative(clouds[0], navs[0], 1.2);
  auto confident = [](const spod::SpodResult& r) {
    int n = 0;
    for (const auto& d : r.detections) n += d.score >= eval::kScoreThreshold;
    return n;
  };
  std::printf("\ncooperators fused: %zu; fused cloud %zu points\n",
              session.num_cooperators(), fleet.fused_cloud.size());
  std::printf("single shot detections:  %d\n", confident(single));
  std::printf("fleet view detections:   %d\n", confident(fleet.fused));

  // The next frame arrives before anyone rebroadcast: every cooperator's
  // reconstruction is served from the session cache, so fusion cost drops to
  // a merge while the output stays bit-identical.
  const auto next = session.DetectCooperative(clouds[0], navs[0], 1.3);
  std::printf("\nnext frame (unchanged cooperators): fusion %s\n",
              next.stages.Summary().c_str());
  std::printf("reconstruction cache: %zu hits, %zu misses\n",
              session.stats().recon_cache_hits,
              session.stats().recon_cache_misses);
  return 0;
}
