// Region-of-interest exchange over a simulated DSRC channel (§IV-G).
//
// Two cars stream cooperative-perception packages at 1 Hz for eight seconds.
// The demo picks the ROI category per the relative geometry (Fig. 11): the
// full frame while passing with no physical buffer, the 120-degree front
// sector once they are at junction distance, and the one-way forward sector
// while following — and accounts for bandwidth, latency and losses.
#include <cstdio>

#include "core/cooper.h"
#include "eval/experiment.h"
#include "net/dsrc.h"
#include "net/serialize.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace cooper;

namespace {

core::RoiCategory PickRoi(const geom::Vec3& p1, double yaw1,
                          const geom::Vec3& p2, double yaw2) {
  const double lateral = std::abs(p1.y - p2.y);
  const bool opposite =
      std::abs(geom::WrapAngle(yaw1 - yaw2)) > geom::DegToRad(120);
  if (opposite && lateral < 4.0) return core::RoiCategory::kFullFrame;
  if (opposite) return core::RoiCategory::kFrontSector;
  return core::RoiCategory::kForwardLead;
}

}  // namespace

int main() {
  auto scenario = sim::MakeTjScenario(2);
  const sim::LidarSimulator lidar(scenario.lidar);
  const core::CooperPipeline pipeline(eval::MakeCooperConfig(scenario.lidar));

  net::DsrcChannel channel(net::DsrcConfig{6.0, 2.0, /*loss=*/0.05, 0.9});
  Rng rng(2026);
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};

  std::printf("sec | ROI choice                  | wire Mbit | latency ms | "
              "delivered | fused detections\n");
  for (int second = 0; second < 9; ++second) {
    // Three phases matching Fig. 11: (1) passing in the adjacent opposite
    // lane, (2) opposite directions with a wide separation, (3) car 2
    // leading car 1 in the same lane.
    const sim::VehicleState v1{"car1", {2.5 * second, 0.0, 0.0}, {0, 0, 0}};
    sim::VehicleState v2{"car2",
                         {40.0 - 3.0 * second, -3.2, 0.0},
                         {geom::DegToRad(180), 0, 0}};
    if (second >= 3 && second < 6) {
      v2.position.y = -9.0;  // separated carriageways
    } else if (second >= 6) {
      v2 = sim::VehicleState{"car2",
                             {2.5 * second + 12.0, 0.0, 0.0},
                             {0, 0, 0}};  // leading in the same lane
    }
    const auto cloud1 = lidar.Scan(scenario.scene, v1.ToPose(), rng);
    const auto cloud2 = lidar.Scan(scenario.scene, v2.ToPose(), rng);

    const auto roi = PickRoi(v1.position, 0.0, v2.position, v2.attitude.yaw);
    const core::NavMetadata nav2{v2.position, v2.attitude, mount};
    const auto package = pipeline.MakePackage(2, second, roi, nav2, cloud2);
    const auto wire = net::SerializePackage(package);
    const auto report = channel.Transmit(wire.size(), rng);

    int fused_detections = -1;
    if (report.delivered) {
      const core::NavMetadata nav1{v1.position, v1.attitude, mount};
      const auto parsed = net::DeserializePackage(wire);
      if (parsed.ok()) {
        const auto coop = pipeline.DetectCooperative(cloud1, nav1, *parsed);
        if (coop.ok()) {
          fused_detections = 0;
          for (const auto& d : coop->fused.detections) {
            fused_detections += d.score >= eval::kScoreThreshold ? 1 : 0;
          }
        }
      }
    }
    std::printf("%3d | %-27s | %9.2f | %10.1f | %-9s | %d\n", second + 1,
                core::RoiCategoryName(roi), wire.size() * 8.0 / 1e6,
                report.delivered ? report.latency_ms : 0.0,
                report.delivered ? "yes" : "LOST", fused_detections);
  }

  std::printf("\nchannel totals: %zu messages, %zu dropped, %.2f Mbit on air "
              "(%.2f Mbit delivered), effective rate %.1f Mbit/s\n",
              channel.total_messages(), channel.total_dropped(),
              channel.total_bytes_on_air() * 8.0 / 1e6,
              channel.total_bytes_delivered() * 8.0 / 1e6,
              channel.EffectiveMbps());
  return 0;
}
