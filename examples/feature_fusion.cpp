// Feature-level cooperative exchange (the F-Cooper rung of the ladder).
//
// Three cars share one junction.  Each cooperator offers its scan at all
// three exchange levels — raw cloud, ROI cloud, voxel features — and the
// bandwidth-tiered planner picks a level per cooperator from the DSRC
// airtime budget.  The ego session then ingests the planned packages over
// the real wire format and runs one fused detection pass: cloud-level
// packages merge points, feature-level packages maxout-merge into the ego
// VFE tensor (plus pseudo-points where only the cooperator saw structure).
#include <cstdio>

#include "core/cooper.h"
#include "core/demand.h"
#include "core/session.h"
#include "eval/experiment.h"
#include "feat/planner.h"
#include "net/serialize.h"
#include "sim/lidar.h"
#include "sim/scenario.h"

using namespace cooper;

int main() {
  sim::Scenario scenario = sim::MakeTjScenario(2);
  const sim::LidarSimulator lidar(scenario.lidar);
  Rng rng(scenario.seed);
  const geom::Vec3 mount{0, 0, scenario.lidar.sensor_height};

  std::vector<pc::PointCloud> clouds;
  std::vector<core::NavMetadata> navs;
  for (const sim::VehicleState& vp : scenario.viewpoints) {
    clouds.push_back(lidar.Scan(scenario.scene, vp.ToPose(), rng));
    navs.push_back(core::NavMetadata{vp.position, vp.attitude, mount});
  }

  core::CooperConfig cfg = eval::MakeCooperConfig(scenario.lidar);
  core::CooperativeSession session(cfg, core::SessionConfig{});
  const core::CooperPipeline& pipeline = session.pipeline();

  // 1. Every cooperator quotes its payload size at each level.
  const feat::ExchangeLevel kLevels[] = {feat::ExchangeLevel::kRawCloud,
                                         feat::ExchangeLevel::kRoiCloud,
                                         feat::ExchangeLevel::kVoxelFeatures};
  const core::RoiCategory roi = core::RoiCategory::kFrontSector;
  std::vector<feat::CooperatorDemand> demands;
  std::printf("cooperator quotes (payload bytes)\n");
  std::printf("  sender |      raw |      ROI | features\n");
  for (std::uint32_t k = 1; k < clouds.size(); ++k) {
    std::size_t bytes[3];
    std::size_t i = 0;
    for (const feat::ExchangeLevel level : kLevels) {
      bytes[i++] = pipeline
                       .MakeLeveledPackage(k, 10.0, roi, level, navs[k],
                                           clouds[k])
                       .payload.size();
    }
    demands.push_back(
        core::MakeCooperatorDemand(k, roi, bytes[0], bytes[1], bytes[2]));
    std::printf("  %6u | %8zu | %8zu | %8zu  (features %.1fx smaller than ROI)\n",
                k, bytes[0], bytes[1], bytes[2],
                static_cast<double>(bytes[1]) / static_cast<double>(bytes[2]));
  }

  // 2. The planner fits the fleet into the frame's airtime budget.  A
  //    congested channel (low effective rate) degrades raw -> ROI -> features.
  std::printf("\nexchange plans by channel rate\n");
  for (const double rate_mbps : {27.0, 6.0, 1.0}) {
    feat::PlannerConfig planner;
    planner.channel.data_rate_mbps = rate_mbps;
    const feat::ExchangePlan plan = feat::PlanExchange(planner, demands);
    std::printf("  %4.1f Mbps -> ", rate_mbps);
    for (const feat::PlanEntry& e : plan.entries) {
      std::printf("[%u: %s] ", e.sender_id, feat::ExchangeLevelName(e.level));
    }
    std::printf(" airtime %.1f / budget %.1f ms%s\n", plan.airtime_ms,
                plan.budget_ms, plan.over_budget ? "  OVER BUDGET" : "");
  }

  // 3. Ship the congested plan (everyone at voxel features) through the wire
  //    and fuse.  The level byte rides in the package header, so the session
  //    routes each payload to the right decoder on its own.
  for (std::uint32_t k = 1; k < clouds.size(); ++k) {
    const core::ExchangePackage package = pipeline.MakeLeveledPackage(
        k, 10.0, roi, feat::ExchangeLevel::kVoxelFeatures, navs[k], clouds[k]);
    const Status status =
        session.ReceiveWire(net::SerializePackage(package), 10.0);
    if (!status.ok()) std::printf("delivery %u failed\n", k);
  }

  const spod::SpodResult solo = pipeline.DetectSingleShot(clouds[0]);
  const core::CooperOutput fused =
      session.DetectCooperative(clouds[0], navs[0], 10.0);
  std::printf("\nfused detection at the feature level\n");
  std::printf("  cooperators fused      : %zu\n", session.num_cooperators());
  std::printf("  pseudo-points gained   : %zu\n", fused.transmitter_points);
  std::printf("  single-shot detections : %zu\n", solo.detections.size());
  std::printf("  fused detections       : %zu\n",
              fused.fused.detections.size());
  return 0;
}
