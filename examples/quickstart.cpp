// Quickstart: two connected vehicles, one occluded car, one fused frame.
//
// Builds a small street scene where a parked truck hides a car from
// vehicle A but not from vehicle B, then runs the full Cooper path:
// scan -> ROI -> compress -> exchange package -> reconstruct (Eq. 1-3) ->
// merge (Eq. 2) -> SPOD detection, and prints single-shot vs cooperative
// results.
#include <cstdio>

#include "core/cooper.h"
#include "eval/bev_render.h"
#include "eval/experiment.h"
#include "sim/lidar.h"
#include "sim/scenario.h"
#include "sim/sensors.h"

using namespace cooper;

int main() {
  // --- Build a scene: ego road with an occluding truck and three cars. ---
  sim::Scene scene;
  scene.AddObject(sim::ObjectClass::kTruck,
                  sim::MakeTruckBox({14.0, 3.5, 0.0}, 0.0), 0.6);
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({22.0, 3.8, 0.0}, 0.0));
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({12.0, -3.5, 0.0}, 180.0));
  scene.AddObject(sim::ObjectClass::kCar, sim::MakeCarBox({30.0, -3.5, 0.0}, 180.0));

  // Vehicle A at the origin, vehicle B 25 m ahead in the oncoming lane,
  // facing back toward A.
  const sim::VehicleState vehicle_a{"A", {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  const sim::VehicleState vehicle_b{"B", {34.0, -3.5, 0.0}, {3.14159, 0.0, 0.0}};

  // --- Scan with a 64-beam sensor. ---
  const sim::LidarConfig lidar_cfg = sim::Hdl64Config();
  const sim::LidarSimulator lidar(lidar_cfg);
  Rng rng(7);
  const pc::PointCloud cloud_a = lidar.Scan(scene, vehicle_a.ToPose(), rng);
  const pc::PointCloud cloud_b = lidar.Scan(scene, vehicle_b.ToPose(), rng);
  std::printf("vehicle A scanned %zu points, vehicle B scanned %zu points\n",
              cloud_a.size(), cloud_b.size());

  // --- Cooper pipeline. ---
  const core::CooperConfig cfg = eval::MakeCooperConfig(lidar_cfg);
  const core::CooperPipeline pipeline(cfg);

  const geom::Vec3 mount{0.0, 0.0, lidar_cfg.sensor_height};
  const core::NavMetadata nav_a{vehicle_a.position, vehicle_a.attitude, mount};
  const core::NavMetadata nav_b{vehicle_b.position, vehicle_b.attitude, mount};

  // Single-shot perception on A.
  const spod::SpodResult single = pipeline.DetectSingleShot(cloud_a);
  std::printf("\nsingle shot (A): %zu detections\n", single.detections.size());
  for (const auto& d : single.detections) {
    std::printf("  box at (%6.1f, %6.1f) score %.2f  (%zu pts)\n",
                d.box.center.x, d.box.center.y, d.score, d.num_points);
  }

  // B broadcasts a full-frame package; A fuses and re-detects.
  const core::ExchangePackage package = pipeline.MakePackage(
      /*sender_id=*/2, /*timestamp_s=*/0.0, core::RoiCategory::kFullFrame,
      nav_b, cloud_b);
  std::printf("\nexchange package: %.2f Mbit compressed payload\n",
              package.PayloadMbit());

  const auto coop = pipeline.DetectCooperative(cloud_a, nav_a, package);
  if (!coop.ok()) {
    std::printf("cooperative detection failed: %s\n",
                coop.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCooper (A+B fused, %zu points): %zu detections\n",
              coop->fused_cloud.size(), coop->fused.detections.size());
  for (const auto& d : coop->fused.detections) {
    std::printf("  box at (%6.1f, %6.1f) score %.2f  (%zu pts)\n",
                d.box.center.x, d.box.center.y, d.score, d.num_points);
  }
  std::printf("\ndetection time: single %.1f ms, Cooper %.1f ms\n",
              single.timings.TotalUs() / 1000.0,
              coop->fused.timings.TotalUs() / 1000.0);

  // Bird's-eye view of the fused frame (the textual Fig. 2c).
  eval::BevRenderConfig render_cfg;
  render_cfg.min_x = -5.0;
  render_cfg.max_x = 45.0;
  render_cfg.min_y = -12.0;
  render_cfg.max_y = 12.0;
  eval::BevCanvas canvas(render_cfg);
  canvas.DrawPoints(coop->fused_cloud);
  std::vector<geom::Box3> gt;
  for (const auto& obj : scene.objects()) {
    geom::Box3 b = obj.box;
    b.center.z -= lidar_cfg.sensor_height;  // world -> A's sensor frame
    gt.push_back(b);
  }
  canvas.DrawGroundTruth(gt);
  canvas.DrawDetections(coop->fused.detections);
  canvas.DrawSensor();
  std::printf("\n%s", canvas.Render().c_str());
  return 0;
}
