// The Fig. 5 story on the T&J-style dataset: two golf carts with 16-beam
// VLP-16-class sensors in a parking lot.  Cars hidden from *both* vehicles'
// detectors appear after raw-data fusion — the phenomenon that object-level
// fusion cannot reproduce ("due to neither vehicle detecting the objects by
// themselves, there stands no possible way for the object-level fusion to
// detect the objects that were missed", §IV-D).
#include <cstdio>

#include "core/cooper.h"
#include "eval/experiment.h"
#include "eval/matching.h"
#include "sim/scenario.h"

using namespace cooper;

int main() {
  const auto scenario = sim::MakeTjScenario(1);
  std::printf("scenario: %s (16-beam, parking lot), %zu ground-truth cars\n",
              scenario.name.c_str(), scenario.scene.Targets().size());

  // Run the long-baseline case — the cooperator covers the far end of the
  // lot that the receiving cart cannot resolve.
  const auto& coop_case = scenario.cases[2];
  const auto outcome = eval::RunCoopCase(scenario, coop_case);
  std::printf("cooperators: %s and %s, delta-d = %.1f m\n\n",
              outcome.single_a.c_str(), outcome.single_b.c_str(),
              outcome.delta_d);

  // Object-level (high-level) fusion can only exchange *detections*, so its
  // best case is the union of the two single-shot detection sets.
  int det_a = 0, det_b = 0, det_coop = 0, object_level = 0, neither = 0;
  for (const auto& t : outcome.targets) {
    det_a += t.detected_a;
    det_b += t.detected_b;
    det_coop += t.detected_coop;
    object_level += (t.detected_a || t.detected_b) ? 1 : 0;
    if (!t.detected_a && !t.detected_b && t.detected_coop) {
      ++neither;
      std::printf("NEW car discovered by fusion: %.0f m from %s, %.0f m from "
                  "%s, cooperative score %.2f\n",
                  t.range_a, outcome.single_a.c_str(), t.range_b,
                  outcome.single_b.c_str(), t.score_coop);
    }
  }

  std::printf("\nsingle shot %s:        %d cars\n", outcome.single_a.c_str(), det_a);
  std::printf("single shot %s:        %d cars\n", outcome.single_b.c_str(), det_b);
  std::printf("object-level fusion:    %d cars (union of detection sets)\n",
              object_level);
  std::printf("Cooper (raw-data):      %d cars, of which %d seen by no single "
              "shot\n",
              det_coop, neither);
  if (det_coop > object_level) {
    std::printf("\nraw-data fusion found %d car(s) that object-level fusion "
                "cannot, because no single vehicle ever detected them.\n",
                det_coop - object_level);
  }
  return 0;
}
